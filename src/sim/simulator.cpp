#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/analyze.h"
#include "sim/link_timeline.h"
#include "util/thread_pool.h"

namespace syccl::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint8_t kPresent = 1;
constexpr std::uint8_t kForwarded = 2;
}  // namespace

// Resolved once per Simulator and shared (read-only) by every engine run:
// for each (dimension, rank), the group id and the full physical hop path
// rank → group switch and group switch → rank, flattened into one array so
// an op's path is two index ranges instead of a per-op vector build.
//
// Link busy-state is keyed by the directed physical link id, shared across
// dimensions: a rail (dim 1) and a spine (dim 2) transfer from the same GPU
// contend for the same NIC uplink. `num_links` bounds those ids so engines
// can keep timelines in a dense vector.
struct Simulator::PathCache {
  struct Entry {
    std::int32_t group = -1;
    std::uint32_t up_begin = 0, up_end = 0;
    std::uint32_t down_begin = 0, down_end = 0;
  };

  int num_dims = 0;
  int num_ranks = 0;
  int num_links = 0;
  std::vector<topo::PathHop> hops;
  std::vector<Entry> entries;  ///< dim * num_ranks + rank
  /// src * num_ranks + dst → best common dimension (-1 if none). Ops usually
  /// leave `dim` unset, so this lookup runs once per op per simulation; the
  /// dims × membership scan it replaces is loop-invariant across runs.
  std::vector<std::int32_t> pair_dim;

  explicit PathCache(const topo::TopologyGroups& groups) {
    num_dims = groups.num_dims();
    num_ranks =
        groups.group_of.empty() ? 0 : static_cast<int>(groups.group_of.front().size());
    entries.assign(static_cast<std::size_t>(num_dims) * static_cast<std::size_t>(num_ranks),
                   Entry{});
    int max_link = -1;
    for (int d = 0; d < num_dims; ++d) {
      for (int r = 0; r < num_ranks; ++r) {
        const int g = groups.group_of[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)];
        if (g < 0) continue;
        const topo::GroupTopology& gt = groups.group(d, g);
        const int l = gt.local_of(r);
        Entry& e = entries[static_cast<std::size_t>(d) * static_cast<std::size_t>(num_ranks) +
                           static_cast<std::size_t>(r)];
        e.group = g;
        e.up_begin = static_cast<std::uint32_t>(hops.size());
        for (const auto& h : gt.up_hops[static_cast<std::size_t>(l)]) {
          hops.push_back(h);
          max_link = std::max(max_link, h.link_id);
        }
        e.up_end = static_cast<std::uint32_t>(hops.size());
        e.down_begin = e.up_end;
        for (const auto& h : gt.down_hops[static_cast<std::size_t>(l)]) {
          hops.push_back(h);
          max_link = std::max(max_link, h.link_id);
        }
        e.down_end = static_cast<std::uint32_t>(hops.size());
      }
    }
    num_links = max_link + 1;
    pair_dim.resize(static_cast<std::size_t>(num_ranks) * static_cast<std::size_t>(num_ranks));
    for (int a = 0; a < num_ranks; ++a) {
      for (int b = 0; b < num_ranks; ++b) {
        pair_dim[static_cast<std::size_t>(a) * static_cast<std::size_t>(num_ranks) +
                 static_cast<std::size_t>(b)] = groups.best_common_dim(a, b);
      }
    }
  }
};

namespace {

/// One simulation's working state. All of it is flat: piece state lives in a
/// lazily-allocated dense row per piece (slot ids into struct-of-arrays
/// columns, block arrivals and reduce-contributor bitsets in arenas), link
/// timelines in a dense per-link-id vector. No per-op hashing, no per-op
/// copies — arena offsets stay valid across allocation, so the source state
/// is read in place (the old map-backed engine had to copy `block_arrival`
/// and the contributor set on every op because an insertion could rehash).
struct Engine {
  const topo::TopologyGroups& groups;
  const SimOptions& opts;
  const Schedule& schedule;
  const Simulator::PathCache& paths;
  int num_ranks;
  int contrib_words;

  // Per piece: block count and the base of its rank row (-1 until touched).
  std::vector<std::int32_t> nb_of;
  std::vector<std::int32_t> row_of;
  // Rank rows: row_of[piece] + rank → slot id, or -1 while untouched.
  std::vector<std::int32_t> slots;
  // Per slot (struct-of-arrays):
  std::vector<std::uint32_t> arrival_at;  ///< base into `arrivals`, nb doubles
  std::vector<std::uint32_t> contrib_at;  ///< base into `contribs` (reduce only)
  std::vector<std::uint8_t> flags;        ///< kPresent | kForwarded
  std::vector<double> arrivals;
  std::vector<std::uint64_t> contribs;

  std::vector<LinkTimeline> links;
  SimResult result;

  /// Per-op resolved hop path (timeline pointer + loop-invariant α / β·b),
  /// reused across ops to avoid a per-op allocation.
  struct ResolvedHop {
    LinkTimeline* link;
    double alpha;
    double occupy;
    int link_id;
  };
  std::vector<ResolvedHop> hop_scratch;

  Engine(const topo::TopologyGroups& g, const SimOptions& o, const Schedule& s,
         const Simulator::PathCache& p)
      : groups(g), opts(o), schedule(s), paths(p) {
    num_ranks = paths.num_ranks;
    contrib_words = (num_ranks + 63) / 64;
    nb_of.resize(schedule.pieces.size());
    for (std::size_t i = 0; i < schedule.pieces.size(); ++i) {
      nb_of[i] = blocks_for(schedule.pieces[i].bytes);
    }
    row_of.assign(schedule.pieces.size(), -1);
    const std::size_t reserve_slots = std::min<std::size_t>(2 * schedule.ops.size() + 8, 1 << 16);
    arrival_at.reserve(reserve_slots);
    contrib_at.reserve(reserve_slots);
    flags.reserve(reserve_slots);
    links.resize(static_cast<std::size_t>(paths.num_links));
  }

  int blocks_for(double bytes) const {
    const int nb = static_cast<int>(std::ceil(bytes / std::max(1.0, opts.block_bytes)));
    return std::clamp(nb, 1, std::max(1, opts.max_blocks));
  }

  /// Slot of (piece, rank) or -1 if never touched (lookup only).
  std::int32_t slot_of(int piece, int rank) const {
    const std::int32_t row = row_of[static_cast<std::size_t>(piece)];
    if (row < 0) return -1;
    return slots[static_cast<std::size_t>(row) + static_cast<std::size_t>(rank)];
  }

  /// Slot of (piece, rank), materialising the initial state on first touch.
  std::int32_t ensure_slot(int piece, int rank) {
    std::int32_t& row = row_of[static_cast<std::size_t>(piece)];
    if (row < 0) {
      row = static_cast<std::int32_t>(slots.size());
      slots.resize(slots.size() + static_cast<std::size_t>(num_ranks), -1);
    }
    std::int32_t& s = slots[static_cast<std::size_t>(row) + static_cast<std::size_t>(rank)];
    if (s >= 0) return s;
    s = static_cast<std::int32_t>(flags.size());
    const Piece& p = schedule.pieces[static_cast<std::size_t>(piece)];
    const int nb = nb_of[static_cast<std::size_t>(piece)];
    const bool contributes =
        p.reduce && std::binary_search(p.contributors.begin(), p.contributors.end(), rank);
    const bool present = (!p.reduce && p.origin == rank) || contributes;
    arrival_at.push_back(static_cast<std::uint32_t>(arrivals.size()));
    arrivals.insert(arrivals.end(), static_cast<std::size_t>(nb), present ? 0.0 : kInf);
    flags.push_back(present ? kPresent : 0);
    if (p.reduce) {
      const std::uint32_t base = static_cast<std::uint32_t>(contribs.size());
      contrib_at.push_back(base);
      contribs.insert(contribs.end(), static_cast<std::size_t>(contrib_words), 0);
      if (contributes) {
        contribs[base + static_cast<std::size_t>(rank) / 64] |= 1ull << (rank % 64);
      }
    } else {
      contrib_at.push_back(0);
    }
    return s;
  }

  bool present(std::int32_t slot) const { return (flags[static_cast<std::size_t>(slot)] & kPresent) != 0; }

  /// True iff the slot's contributor bitset covers every rank in `ranks`.
  bool contains_all(std::int32_t slot, const std::vector<int>& ranks) const {
    const std::uint64_t* words = contribs.data() + contrib_at[static_cast<std::size_t>(slot)];
    for (int r : ranks) {
      if (r < 0 || r >= num_ranks) return false;
      if (((words[static_cast<std::size_t>(r) / 64] >> (r % 64)) & 1) == 0) return false;
    }
    return true;
  }

  void run() {
    // Event-loop totals for the observability layer. run() is the single
    // choke point behind Simulator::run/time_collective/tune_issue_order, so
    // these two relaxed adds (per run, not per event) see every simulation.
    static obs::Counter& runs_counter = obs::MetricsRegistry::instance().counter("sim.runs");
    static obs::Counter& events_counter =
        obs::MetricsRegistry::instance().counter("sim.events");
    SYCCL_TRACE_SPAN(span, "sim.run", "sim");

    result.op_start.assign(schedule.ops.size(), 0.0);
    result.op_finish.assign(schedule.ops.size(), 0.0);

    // Ops are processed phase by phase with a barrier between phases; inside
    // a phase, issue order is the per-port order. Schedules almost always
    // list ops in phase order already (merge/reverse/tuning all preserve
    // it), so the sort — and its index vector — is only materialised when an
    // out-of-order phase is actually present.
    std::vector<std::size_t> order;
    bool sorted = true;
    for (std::size_t i = 1; i < schedule.ops.size(); ++i) {
      if (schedule.ops[i].phase < schedule.ops[i - 1].phase) {
        sorted = false;
        break;
      }
    }
    if (!sorted) {
      order.resize(schedule.ops.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return schedule.ops[a].phase < schedule.ops[b].phase;
      });
    }

    double phase_floor = 0.0;
    double phase_max = 0.0;
    int current_phase = schedule.ops.empty()
                            ? 0
                            : schedule.ops[sorted ? 0 : order.front()].phase;

    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
      const std::size_t idx = sorted ? i : order[i];
      const TransferOp& op = schedule.ops[idx];
      if (op.phase != current_phase) {
        phase_floor = phase_max;
        current_phase = op.phase;
      }
      const double finish = run_op(idx, phase_floor);
      phase_max = std::max(phase_max, finish);
      result.op_finish[idx] = finish;
      result.makespan = std::max(result.makespan, finish);
    }

    if (opts.record_final_state) record_final_state();

    runs_counter.add(1);
    events_counter.add(static_cast<std::int64_t>(result.num_events));
    span.annotate("ops", static_cast<double>(schedule.ops.size()));
    span.annotate("events", static_cast<double>(result.num_events));
    span.annotate("makespan_us", result.makespan * 1e6);
  }

  void record_final_state() {
    // Piece-major, rank-ascending iteration yields the sorted order the
    // result contract requires.
    for (int piece = 0; piece < static_cast<int>(schedule.pieces.size()); ++piece) {
      if (row_of[static_cast<std::size_t>(piece)] < 0) continue;
      const bool reduce = schedule.pieces[static_cast<std::size_t>(piece)].reduce;
      for (int rank = 0; rank < num_ranks; ++rank) {
        const std::int32_t s = slot_of(piece, rank);
        if (s < 0 || !present(s)) continue;
        PieceRankState out;
        out.piece = piece;
        out.rank = rank;
        const double* arr = arrivals.data() + arrival_at[static_cast<std::size_t>(s)];
        out.block_arrival.assign(arr, arr + nb_of[static_cast<std::size_t>(piece)]);
        if (reduce) {
          const std::uint64_t* words = contribs.data() + contrib_at[static_cast<std::size_t>(s)];
          for (int r = 0; r < num_ranks; ++r) {
            if ((words[static_cast<std::size_t>(r) / 64] >> (r % 64)) & 1) {
              out.contributors.push_back(r);
            }
          }
        }
        result.final_state.push_back(std::move(out));
      }
    }
  }

  double run_op(std::size_t idx, double phase_floor) {
    const TransferOp& op = schedule.ops[idx];
    if (op.piece < 0 || static_cast<std::size_t>(op.piece) >= schedule.pieces.size()) {
      throw std::invalid_argument("op references unknown piece");
    }
    if (op.src < 0 || op.src >= num_ranks || op.dst < 0 || op.dst >= num_ranks) {
      throw std::invalid_argument("op rank out of range");
    }
    const Piece& p = schedule.pieces[static_cast<std::size_t>(op.piece)];

    int dim = op.dim;
    if (dim < 0) {
      dim = paths.pair_dim[static_cast<std::size_t>(op.src) *
                               static_cast<std::size_t>(num_ranks) +
                           static_cast<std::size_t>(op.dst)];
    }
    if (dim < 0 || dim >= paths.num_dims) {
      throw std::invalid_argument("op endpoints share no dimension group");
    }
    const auto* entries =
        paths.entries.data() + static_cast<std::size_t>(dim) * static_cast<std::size_t>(num_ranks);
    const Simulator::PathCache::Entry& e_src = entries[op.src];
    const Simulator::PathCache::Entry& e_dst = entries[op.dst];
    if (e_src.group < 0 || e_src.group != e_dst.group) {
      throw std::invalid_argument("op crosses groups in dimension " + std::to_string(dim));
    }

    const std::int32_t s_slot = ensure_slot(op.piece, op.src);
    if (!present(s_slot)) {
      throw std::invalid_argument("piece " + std::to_string(op.piece) +
                                  " not available at op source rank " + std::to_string(op.src) +
                                  " (dependency inversion?)");
    }
    const std::int32_t d_slot = ensure_slot(op.piece, op.dst);

    // Arena offsets survive the dst allocation above, so the source arrival
    // times are read in place — the per-op copy is gone.
    const double* src_arrival = arrivals.data() + arrival_at[static_cast<std::size_t>(s_slot)];
    double* dst_arrival = arrivals.data() + arrival_at[static_cast<std::size_t>(d_slot)];

    if (p.reduce && (flags[static_cast<std::size_t>(d_slot)] & kForwarded) != 0) {
      // The destination already forwarded its partial; merging a new
      // contribution now means the copy in flight is stale — downstream
      // ranks would see a contributor set that silently grew after the
      // send. Reject, like the src-absent case, instead of leaving the
      // divergence for the final-destination demand check to maybe catch.
      const std::uint64_t* sc = contribs.data() + contrib_at[static_cast<std::size_t>(s_slot)];
      const std::uint64_t* dc = contribs.data() + contrib_at[static_cast<std::size_t>(d_slot)];
      for (int w = 0; w < contrib_words; ++w) {
        if ((sc[w] & ~dc[w]) != 0) {
          throw std::invalid_argument(
              "stale reduce contribution: piece " + std::to_string(op.piece) +
              " gains contributors at rank " + std::to_string(op.dst) +
              " after that rank forwarded its partial");
        }
      }
    }

    const int nb = nb_of[static_cast<std::size_t>(op.piece)];
    const double block_bytes = p.bytes / nb;
    const bool dst_present = present(d_slot);

    // Resolve the op's hops once: timeline pointer, α, and the per-block
    // occupancy β·b are loop-invariant across blocks, so the per-event inner
    // loop below is pure arithmetic plus one timeline allocation.
    hop_scratch.clear();
    for (std::uint32_t h = e_src.up_begin; h < e_src.up_end; ++h) {
      const topo::PathHop& hop = paths.hops[h];
      hop_scratch.push_back({&links[static_cast<std::size_t>(hop.link_id)], hop.alpha,
                             block_bytes * hop.beta, hop.link_id});
    }
    for (std::uint32_t h = e_dst.down_begin; h < e_dst.down_end; ++h) {
      const topo::PathHop& hop = paths.hops[h];
      hop_scratch.push_back({&links[static_cast<std::size_t>(hop.link_id)], hop.alpha,
                             block_bytes * hop.beta, hop.link_id});
    }
    const ResolvedHop* hops_begin = hop_scratch.data();
    const ResolvedHop* hops_end = hops_begin + hop_scratch.size();

    double finish = 0.0;
    double first_start = -1.0;
    double first_ready = phase_floor;
    std::size_t events = 0;
    for (int b = 0; b < nb; ++b) {
      // Cut-through per hop: the block's head advances after each hop's α,
      // its tail after the slowest upstream hop drains; each directed link
      // is occupied for β·b and serialises concurrent flows.
      const double ready = std::max(src_arrival[b], phase_floor);
      if (b == 0) first_ready = ready;
      double head = ready;
      double tail = ready;
      for (const ResolvedHop* hop = hops_begin; hop != hops_end; ++hop) {
        const double start = hop->link->allocate(head, hop->occupy);
        if (first_start < 0) first_start = start;
        head = start + hop->alpha;
        tail = std::max(start + hop->alpha + hop->occupy, tail + hop->alpha);
        ++events;
        if (opts.record_link_events) {
          result.link_events.push_back(
              {static_cast<int>(idx), b, hop->link_id, start, start + hop->occupy});
        }
      }
      const double arrival = tail;
      double& slot = dst_arrival[b];
      if (p.reduce) {
        // Reduce: the block is usable downstream only once every inbound
        // partial arrived.
        slot = dst_present ? std::max(slot, arrival) : arrival;
      } else {
        slot = std::min(slot, arrival);
      }
      finish = std::max(finish, arrival);
    }
    result.num_events += events;
    // An op whose blocks never claimed a link slot (zero-hop path) leaves
    // first_start unset; fall back to the first block's ready time instead
    // of reporting a bogus 0.0 that would corrupt tune_issue_order's
    // start-time sort.
    result.op_start[static_cast<std::size_t>(idx)] = first_start >= 0.0 ? first_start : first_ready;
    flags[static_cast<std::size_t>(d_slot)] |= kPresent;
    if (p.reduce) {
      std::uint64_t* dc = contribs.data() + contrib_at[static_cast<std::size_t>(d_slot)];
      const std::uint64_t* sc = contribs.data() + contrib_at[static_cast<std::size_t>(s_slot)];
      for (int w = 0; w < contrib_words; ++w) dc[w] |= sc[w];
      flags[static_cast<std::size_t>(s_slot)] |= kForwarded;
    }
    return finish;
  }
};

/// Demand check shared by time_collective and tune_issue_order: every chunk
/// must be fully present at each destination. With chunk splitting, the
/// distinct pieces of one chunk at a destination must cover the chunk's
/// bytes. Returns the completion time of the demands.
double demand_completion(const Engine& engine, const Schedule& schedule,
                         const coll::Collective& coll, const DemandIndex& index) {
  double completion = 0.0;
  const double chunk_bytes = coll.chunk_bytes();
  constexpr double kEps = 1e-6;

  const auto demand_time = [&](int chunk, int dst, bool reduce,
                               const std::vector<int>* contributors) -> double {
    const auto it = index.pieces_by_chunk.find(chunk);
    if (it == index.pieces_by_chunk.end()) {
      throw std::invalid_argument("schedule has no pieces for chunk " + std::to_string(chunk));
    }
    double covered = 0.0;
    double when = 0.0;
    for (int pid : it->second) {
      const std::int32_t slot = engine.slot_of(pid, dst);
      if (slot < 0 || !engine.present(slot)) continue;
      if (reduce && contributors != nullptr && !engine.contains_all(slot, *contributors)) {
        continue;
      }
      covered += schedule.pieces[static_cast<std::size_t>(pid)].bytes;
      const double* arr =
          engine.arrivals.data() + engine.arrival_at[static_cast<std::size_t>(slot)];
      const int nb = engine.nb_of[static_cast<std::size_t>(pid)];
      for (int b = 0; b < nb; ++b) when = std::max(when, arr[b]);
    }
    if (covered + kEps < chunk_bytes) {
      throw std::invalid_argument("demand unmet: chunk " + std::to_string(chunk) +
                                  " at rank " + std::to_string(dst) + " covered " +
                                  std::to_string(covered) + "/" + std::to_string(chunk_bytes));
    }
    return when;
  };

  if (!coll.reduce()) {
    for (std::size_t c = 0; c < coll.chunks().size(); ++c) {
      for (int d : coll.chunks()[c].dsts) {
        completion = std::max(completion, demand_time(static_cast<int>(c), d, false, nullptr));
      }
    }
    return completion;
  }

  // Reduce collectives: block index == destination rank (see pieces_for).
  for (const auto& [dst, contribs] : index.reduce_demands) {
    completion = std::max(completion, demand_time(dst, dst, true, &contribs));
  }
  return completion;
}

/// Runs fn(i) for every index — across `pool` when given, serially
/// otherwise. Callers capture per-index failures, so fn must not throw.
void dispatch(util::ThreadPool* pool, std::size_t count,
              const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && count > 1) {
    pool->parallel_for(count, fn);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

}  // namespace

Simulator::Simulator(const topo::TopologyGroups& groups, SimOptions opts)
    : groups_(groups), opts_(opts), paths_(std::make_shared<const PathCache>(groups)) {
  if (opts_.block_bytes <= 0) throw std::invalid_argument("block_bytes must be positive");
  if (opts_.max_blocks < 1) throw std::invalid_argument("max_blocks must be >= 1");
}

SimResult Simulator::run(const Schedule& schedule) const {
  Engine engine(groups_, opts_, schedule, *paths_);
  engine.run();
  return std::move(engine.result);
}

double Simulator::tune_issue_order(Schedule& schedule, const coll::Collective& coll,
                                   int passes) const {
  // The piece set is invariant under reordering, so one demand index serves
  // every pass.
  const DemandIndex index = build_demand_index(schedule, coll);

  // One engine run supplies both the baseline timing and the first pass's
  // sort keys (the old implementation simulated the same unmodified schedule
  // twice — once for each).
  Engine engine(groups_, opts_, schedule, *paths_);
  engine.run();
  double best = demand_completion(engine, schedule, coll, index);
  std::vector<double> op_start = std::move(engine.result.op_start);

  for (int p = 0; p < passes; ++p) {
    std::vector<std::size_t> idx(schedule.ops.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (schedule.ops[a].phase != schedule.ops[b].phase) {
        return schedule.ops[a].phase < schedule.ops[b].phase;
      }
      return op_start[a] < op_start[b];
    });
    Schedule candidate = schedule;
    candidate.ops.clear();
    for (std::size_t i : idx) candidate.ops.push_back(schedule.ops[i]);
    double t;
    Engine trial(groups_, opts_, candidate, *paths_);
    try {
      trial.run();
      t = demand_completion(trial, candidate, coll, index);
    } catch (const std::exception&) {
      break;  // reorder broke a dependency (shouldn't happen); keep current
    }
    if (t < best) {
      best = t;
      schedule = std::move(candidate);
      op_start = std::move(trial.result.op_start);
    } else {
      break;
    }
  }
  return best;
}

double Simulator::time_collective(const Schedule& schedule, const coll::Collective& coll) const {
  Engine engine(groups_, opts_, schedule, *paths_);
  engine.run();
  return demand_completion(engine, schedule, coll, build_demand_index(schedule, coll));
}

std::vector<SimResult> Simulator::run_batch(std::span<const Schedule* const> schedules,
                                            util::ThreadPool* pool) const {
  std::vector<SimResult> results(schedules.size());
  std::vector<std::exception_ptr> errors(schedules.size());
  dispatch(pool, schedules.size(), [&](std::size_t i) {
    try {
      results[i] = run(*schedules[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  // Like the serial loop, the first failing candidate's exception wins —
  // deterministically by index, not by completion order.
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

std::vector<BatchTiming> Simulator::time_collectives(std::span<const Schedule* const> schedules,
                                                     const coll::Collective& coll,
                                                     util::ThreadPool* pool) const {
  std::vector<BatchTiming> out(schedules.size());
  dispatch(pool, schedules.size(), [&](std::size_t i) {
    try {
      out[i].time = time_collective(*schedules[i], coll);
    } catch (const std::exception& e) {
      out[i].error = e.what()[0] != '\0' ? e.what() : "simulation failed";
    }
  });
  return out;
}

std::vector<BatchTiming> Simulator::tune_issue_orders(std::span<Schedule* const> schedules,
                                                      const coll::Collective& coll, int passes,
                                                      util::ThreadPool* pool) const {
  std::vector<BatchTiming> out(schedules.size());
  dispatch(pool, schedules.size(), [&](std::size_t i) {
    try {
      out[i].time = tune_issue_order(*schedules[i], coll, passes);
    } catch (const std::exception& e) {
      out[i].error = e.what()[0] != '\0' ? e.what() : "simulation failed";
    }
  });
  return out;
}

}  // namespace syccl::sim
