// Schedule representation shared by the synthesizer, the baselines, the
// simulator and the XML runtime.
//
// A schedule moves *pieces*. A piece is an independently routable unit of
// data: a whole chunk, or a fraction of one when a sketch combination splits
// chunks across paths (§4.2). Gather/reduce flows use reduce pieces, where
// every contributor rank starts with a partial value and transfers merge
// partials toward the demanding ranks.
//
// Ops are executed per *port* in the order given (like MSCCL channel
// programs); ops on different ports proceed concurrently. `phase` introduces
// a global barrier between sequentially composed schedules (AllReduce =
// ReduceScatter then AllGather, §4.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/collective.h"

namespace syccl::sim {

struct Piece {
  /// Chunk index in the originating collective; -1 for synthetic pieces.
  int chunk = -1;
  double bytes = 0.0;
  /// Rank initially holding the piece; -1 for reduce pieces (every
  /// contributor holds its own partial).
  int origin = -1;
  bool reduce = false;
  /// Ranks whose partials must be merged (reduce pieces only).
  std::vector<int> contributors;
};

struct TransferOp {
  int piece = -1;
  int src = -1;
  int dst = -1;
  /// Dimension whose group carries the transfer; -1 lets the simulator pick
  /// the fastest dimension containing both endpoints.
  int dim = -1;
  /// Barrier phase (see header comment).
  int phase = 0;
};

struct Schedule {
  std::string name;
  std::vector<Piece> pieces;
  /// Ops in issue order. Per-port execution follows this order.
  std::vector<TransferOp> ops;

  int add_piece(Piece piece);
  void add_op(int piece, int src, int dst, int dim = -1, int phase = 0);

  /// Appends `tail` after this schedule with a phase barrier between them.
  /// Piece ids of `tail` are re-based.
  void append_sequential(const Schedule& tail);

  /// Total bytes crossing links (Σ op piece bytes) — the traffic volume.
  double total_traffic() const;
};

/// Builds the piece set for a collective: one piece per chunk (forward
/// collectives) or one reduce piece per destination block (Reduce/
/// ReduceScatter). Chunk→piece mapping is positional.
std::vector<Piece> pieces_for(const coll::Collective& coll);

}  // namespace syccl::sim
