#include "sim/oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace syccl::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Naive FIFO timeline of one directed link: a plain list of busy intervals
/// sorted by start, never merged. Allocation scans for the earliest gap of
/// the requested width at or after `ready` — O(n) per call, exact.
struct NaiveTimeline {
  std::vector<std::pair<double, double>> busy;  // disjoint, sorted by start

  double allocate(double ready, double dur) {
    if (dur <= 0) return ready;
    double t = ready;
    for (const auto& [s, e] : busy) {
      if (e <= t) continue;       // entirely before the candidate start
      if (s >= t + dur) break;    // gap wide enough: take it
      t = std::max(t, e);         // conflict: retry after this interval
    }
    const auto pos = std::upper_bound(busy.begin(), busy.end(), std::make_pair(t, t));
    busy.insert(pos, {t, t + dur});
    return t;
  }
};

struct RefPiece {
  std::vector<double> block_arrival;
  std::set<int> contributors;
  bool present = false;
  bool forwarded = false;
};

std::string op_desc(std::size_t idx, const TransferOp& op) {
  std::ostringstream os;
  os << "op #" << idx << " (piece " << op.piece << ", " << op.src << "->" << op.dst << ")";
  return os.str();
}

}  // namespace

OracleResult oracle_run(const topo::TopologyGroups& groups, const Schedule& schedule,
                        const SimOptions& opts) {
  if (opts.block_bytes <= 0) throw std::invalid_argument("block_bytes must be positive");
  if (opts.max_blocks < 1) throw std::invalid_argument("max_blocks must be >= 1");

  for (const Piece& p : schedule.pieces) {
    if (!p.reduce) continue;
    if (!std::is_sorted(p.contributors.begin(), p.contributors.end()) ||
        std::adjacent_find(p.contributors.begin(), p.contributors.end()) !=
            p.contributors.end()) {
      throw std::invalid_argument("reduce piece has unsorted or duplicate contributors");
    }
  }

  const auto blocks_for = [&](double bytes) {
    const int nb = static_cast<int>(std::ceil(bytes / std::max(1.0, opts.block_bytes)));
    return std::clamp(nb, 1, std::max(1, opts.max_blocks));
  };

  std::map<std::pair<int, int>, RefPiece> state;
  const auto state_at = [&](int piece, int rank) -> RefPiece& {
    const auto [it, inserted] = state.try_emplace({piece, rank});
    if (inserted) {
      const Piece& p = schedule.pieces[static_cast<std::size_t>(piece)];
      RefPiece& ps = it->second;
      const int nb = blocks_for(p.bytes);
      const bool contributes =
          p.reduce && std::find(p.contributors.begin(), p.contributors.end(), rank) !=
                          p.contributors.end();
      if ((!p.reduce && p.origin == rank) || contributes) {
        ps.block_arrival.assign(static_cast<std::size_t>(nb), 0.0);
        ps.present = true;
        if (contributes) ps.contributors.insert(rank);
      } else {
        ps.block_arrival.assign(static_cast<std::size_t>(nb), kInf);
      }
    }
    return it->second;
  };

  std::map<int, NaiveTimeline> link_busy;

  OracleResult result;
  result.op_start.assign(schedule.ops.size(), 0.0);
  result.op_finish.assign(schedule.ops.size(), 0.0);

  // Group ops by phase, original order preserved inside a phase — the same
  // order a stable phase sort produces.
  std::map<int, std::vector<std::size_t>> by_phase;
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    by_phase[schedule.ops[i].phase].push_back(i);
  }

  double phase_floor = 0.0;
  double finished_max = 0.0;
  for (const auto& [phase, op_ids] : by_phase) {
    (void)phase;
    phase_floor = finished_max;
    for (std::size_t idx : op_ids) {
      const TransferOp& op = schedule.ops[idx];
      const Piece& piece = schedule.pieces[static_cast<std::size_t>(op.piece)];

      int dim = op.dim;
      if (dim < 0) dim = groups.best_common_dim(op.src, op.dst);
      if (dim < 0 || dim >= groups.num_dims()) {
        throw std::invalid_argument(op_desc(idx, op) + ": endpoints share no dimension group");
      }
      const auto& dim_groups = groups.group_of[static_cast<std::size_t>(dim)];
      const int g_src = dim_groups[static_cast<std::size_t>(op.src)];
      if (g_src < 0 || g_src != dim_groups[static_cast<std::size_t>(op.dst)]) {
        throw std::invalid_argument(op_desc(idx, op) + ": crosses groups in dimension " +
                                    std::to_string(dim));
      }
      const topo::GroupTopology& gt = groups.group(dim, g_src);

      std::vector<topo::PathHop> path;
      for (const auto& h : gt.up_hops[static_cast<std::size_t>(gt.local_of(op.src))]) {
        path.push_back(h);
      }
      for (const auto& h : gt.down_hops[static_cast<std::size_t>(gt.local_of(op.dst))]) {
        path.push_back(h);
      }

      // Snapshot the source at issue time (the production contract).
      const RefPiece src_snapshot = state_at(op.piece, op.src);
      if (!src_snapshot.present) {
        throw std::invalid_argument(op_desc(idx, op) + ": piece not present at source");
      }

      const int nb = blocks_for(piece.bytes);
      const double block_bytes = piece.bytes / nb;

      RefPiece& dst = state_at(op.piece, op.dst);
      if (piece.reduce && dst.forwarded &&
          !std::includes(dst.contributors.begin(), dst.contributors.end(),
                         src_snapshot.contributors.begin(), src_snapshot.contributors.end())) {
        throw std::invalid_argument(op_desc(idx, op) +
                                    ": stale reduce contribution after forward");
      }

      double op_first_start = -1.0;
      double first_block_ready = phase_floor;
      double finish = 0.0;
      for (int b = 0; b < nb; ++b) {
        const double ready =
            std::max(src_snapshot.block_arrival[static_cast<std::size_t>(b)], phase_floor);
        if (b == 0) first_block_ready = ready;
        double head = ready;
        double tail = ready;
        for (const topo::PathHop& hop : path) {
          const double occupy = block_bytes * hop.beta;
          const double start = link_busy[hop.link_id].allocate(head, occupy);
          result.events.push_back(
              OracleEvent{static_cast<int>(idx), b, hop.link_id, start, start + occupy});
          if (op_first_start < 0) op_first_start = start;
          head = start + hop.alpha;
          tail = std::max(start + hop.alpha + occupy, tail + hop.alpha);
        }
        const double arrival = tail;
        double& slot = dst.block_arrival[static_cast<std::size_t>(b)];
        if (piece.reduce) {
          slot = dst.present ? std::max(slot, arrival) : arrival;
        } else {
          slot = std::min(slot, arrival);
        }
        finish = std::max(finish, arrival);
      }

      result.op_start[idx] = op_first_start >= 0.0 ? op_first_start : first_block_ready;
      result.op_finish[idx] = finish;
      finished_max = std::max(finished_max, finish);
      dst.present = true;
      if (piece.reduce) {
        dst.contributors.insert(src_snapshot.contributors.begin(),
                                src_snapshot.contributors.end());
        state_at(op.piece, op.src).forwarded = true;
      }
    }
  }
  result.makespan = finished_max;

  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const OracleEvent& a, const OracleEvent& b) { return a.start < b.start; });

  for (const auto& [key, ps] : state) {
    if (!ps.present) continue;
    OraclePieceState out;
    out.block_arrival = ps.block_arrival;
    if (schedule.pieces[static_cast<std::size_t>(key.first)].reduce) {
      out.contributors = ps.contributors;
    }
    result.state.emplace(key, std::move(out));
  }
  return result;
}

namespace {

bool times_close(double a, double b, double rel_tol) {
  if (a == b) return true;  // covers 0 == 0 and shared infinities
  const double scale = std::max({1e-12, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rel_tol * scale;
}

std::string fmt_pair(const std::pair<int, int>& key) {
  std::ostringstream os;
  os << "(piece " << key.first << ", rank " << key.second << ")";
  return os.str();
}

}  // namespace

std::vector<std::string> diff_against_oracle(const SimResult& production,
                                             const OracleResult& oracle, double rel_tol) {
  std::vector<std::string> diffs;
  const auto complain = [&](const std::string& what, double got, double want) {
    std::ostringstream os;
    os.precision(17);
    os << what << ": production " << got << " vs oracle " << want;
    diffs.push_back(os.str());
  };

  if (!times_close(production.makespan, oracle.makespan, rel_tol)) {
    complain("makespan", production.makespan, oracle.makespan);
  }
  if (production.op_start.size() != oracle.op_start.size()) {
    diffs.push_back("op count mismatch");
    return diffs;
  }
  for (std::size_t i = 0; i < production.op_start.size(); ++i) {
    if (!times_close(production.op_start[i], oracle.op_start[i], rel_tol)) {
      complain("op #" + std::to_string(i) + " start", production.op_start[i],
               oracle.op_start[i]);
    }
    if (!times_close(production.op_finish[i], oracle.op_finish[i], rel_tol)) {
      complain("op #" + std::to_string(i) + " finish", production.op_finish[i],
               oracle.op_finish[i]);
    }
  }
  if (production.num_events != oracle.events.size()) {
    diffs.push_back("event count: production " + std::to_string(production.num_events) +
                    " vs oracle " + std::to_string(oracle.events.size()));
  }

  // Final state: the production run must have recorded it.
  std::map<std::pair<int, int>, const PieceRankState*> prod_state;
  for (const auto& st : production.final_state) {
    prod_state.emplace(std::make_pair(st.piece, st.rank), &st);
  }
  if (prod_state.size() != oracle.state.size()) {
    diffs.push_back("present (piece, rank) count: production " +
                    std::to_string(prod_state.size()) + " vs oracle " +
                    std::to_string(oracle.state.size()));
  }
  for (const auto& [key, want] : oracle.state) {
    const auto it = prod_state.find(key);
    if (it == prod_state.end()) {
      diffs.push_back(fmt_pair(key) + " present in oracle only");
      continue;
    }
    const PieceRankState& got = *it->second;
    const std::set<int> got_contrib(got.contributors.begin(), got.contributors.end());
    if (got_contrib != want.contributors) {
      diffs.push_back(fmt_pair(key) + " contributor sets differ");
    }
    if (got.block_arrival.size() != want.block_arrival.size()) {
      diffs.push_back(fmt_pair(key) + " block count differs");
      continue;
    }
    for (std::size_t b = 0; b < got.block_arrival.size(); ++b) {
      if (!times_close(got.block_arrival[b], want.block_arrival[b], rel_tol)) {
        complain(fmt_pair(key) + " block " + std::to_string(b) + " arrival",
                 got.block_arrival[b], want.block_arrival[b]);
      }
    }
  }
  for (const auto& [key, ptr] : prod_state) {
    (void)ptr;
    if (oracle.state.find(key) == oracle.state.end()) {
      diffs.push_back(fmt_pair(key) + " present in production only");
    }
  }
  return diffs;
}

}  // namespace syccl::sim
