// Schedule analysis: the numbers an operator looks at before shipping a
// schedule — traffic split across dimensions, per-port hot spots, relay
// depth, and simulated utilisation. Complements runtime/validate (semantic
// checks) and the simulator (timing).
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/groups.h"

namespace syccl::sim {

/// Demand-side index of a (schedule, collective) pair, shared by every
/// consumer that checks demand coverage — the simulator's timing check, the
/// runtime validator, and the payload executor — so the grouping logic exists
/// once instead of per call site.
struct DemandIndex {
  /// Indices into Schedule::pieces carrying each chunk id.
  std::unordered_map<int, std::vector<int>> pieces_by_chunk;
  /// Reduce collectives only: (destination rank, sorted deduplicated
  /// contributor ranks — the chunk sources plus the destination's own
  /// partial), ascending by destination. Empty for forward collectives.
  std::vector<std::pair<int, std::vector<int>>> reduce_demands;
};

/// Builds both indices. `reduce_demands` is filled iff `coll.reduce()`.
DemandIndex build_demand_index(const Schedule& schedule, const coll::Collective& coll);

/// The reduce demand index alone, derived from the collective (no schedule
/// needed): ascending (destination, sorted contributors incl. destination).
/// Also the piece layout for Reduce/ReduceScatter (block index == dst rank).
std::vector<std::pair<int, std::vector<int>>> reduce_demands(const coll::Collective& coll);

struct ScheduleStats {
  std::size_t num_ops = 0;
  std::size_t num_pieces = 0;
  /// Bytes crossing each dimension's links.
  std::vector<double> traffic_per_dim;
  double total_traffic = 0.0;
  /// Heaviest single directed-port load in bytes, per direction.
  double max_port_egress = 0.0;
  double max_port_ingress = 0.0;
  /// Longest piece relay chain (hops from the piece's origin).
  int max_relay_depth = 0;
  /// Simulated completion time and the busy fraction of the most-loaded
  /// port class over that window (1.0 = perfectly pipelined bottleneck).
  double makespan = 0.0;
  double bottleneck_utilisation = 0.0;
};

/// Computes schedule statistics; runs one simulation for the timing-derived
/// fields. Throws like Simulator::run on malformed schedules.
ScheduleStats analyze_schedule(const Schedule& schedule, const topo::TopologyGroups& groups,
                               const SimOptions& options = {});

/// Multi-line human-readable rendering of the stats.
std::string format_stats(const ScheduleStats& stats);

}  // namespace syccl::sim
