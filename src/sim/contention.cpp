#include "sim/contention.h"

#include <limits>
#include <stdexcept>

namespace syccl::sim {

MergedTenants merge_tenants(std::span<const Tenant> tenants) {
  MergedTenants out;
  out.schedule.name = "contention";
  std::vector<int> piece_base(tenants.size(), 0);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    if (tenants[t].schedule == nullptr) {
      throw std::invalid_argument("merge_tenants: tenant " + std::to_string(t) +
                                  " has no schedule");
    }
    piece_base[t] = static_cast<int>(out.schedule.pieces.size());
    const Schedule& s = *tenants[t].schedule;
    out.schedule.pieces.insert(out.schedule.pieces.end(), s.pieces.begin(), s.pieces.end());
  }
  // Round-robin interleave: one op per live tenant per round. Within a
  // tenant the relative order is untouched, so every dependency the solo
  // schedule satisfied is still satisfied in the merged run.
  std::vector<std::size_t> next(tenants.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const Schedule& s = *tenants[t].schedule;
      if (next[t] >= s.ops.size()) continue;
      TransferOp op = s.ops[next[t]++];
      op.piece += piece_base[t];
      out.schedule.ops.push_back(op);
      out.op_tenant.push_back(static_cast<int>(t));
      progress = true;
    }
  }
  return out;
}

ContentionResult simulate_concurrent(const Simulator& sim, std::span<const Tenant> tenants) {
  const MergedTenants merged = merge_tenants(tenants);
  const SimResult shared = sim.run(merged.schedule);

  ContentionResult out;
  out.makespan = shared.makespan;
  out.tenants.resize(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    out.tenants[t].name = tenants[t].name;
    out.tenants[t].solo = sim.run(*tenants[t].schedule).makespan;
  }
  for (std::size_t i = 0; i < merged.schedule.ops.size(); ++i) {
    auto& timing = out.tenants[static_cast<std::size_t>(merged.op_tenant[i])];
    timing.contended = std::max(timing.contended, shared.op_finish[i]);
  }
  for (auto& timing : out.tenants) {
    timing.slowdown = timing.solo > 0.0 ? timing.contended / timing.solo : 1.0;
  }
  return out;
}

std::vector<double> rank_under_contention(const Simulator& sim,
                                          std::span<const Schedule* const> candidates,
                                          std::span<const Tenant> background) {
  std::vector<double> finish(candidates.size(), std::numeric_limits<double>::infinity());
  std::vector<Tenant> tenants(background.size() + 1);
  for (std::size_t b = 0; b < background.size(); ++b) tenants[b + 1] = background[b];
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    tenants[0] = Tenant{candidates[i], "candidate"};
    try {
      const MergedTenants merged = merge_tenants(tenants);
      const SimResult shared = sim.run(merged.schedule);
      double t = 0.0;
      for (std::size_t k = 0; k < merged.schedule.ops.size(); ++k) {
        if (merged.op_tenant[k] == 0) t = std::max(t, shared.op_finish[k]);
      }
      finish[i] = t;
    } catch (const std::exception&) {
      // Leave infinity: a candidate that cannot even simulate under
      // contention ranks last instead of masking the others.
    }
  }
  return finish;
}

}  // namespace syccl::sim
