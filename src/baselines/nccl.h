// NCCL-style fixed schedule generators (baseline, paper §2.1/§7).
//
// NCCL's algorithms are public: hierarchical rings (intra-server chains
// linked across servers, Fig. 2), double binary trees, pairwise all-to-all
// and PXN rail-aligned all-to-all. We generate those schedules explicitly
// and evaluate them on the same simulator as SyCCL — the performance shape
// (fixed 7:1 intra/inter ratio, |V|−1 ring hops) is a property of the
// schedule, not of the NCCL binary.
#pragma once

#include "coll/collective.h"
#include "sim/schedule.h"
#include "topo/groups.h"

namespace syccl::baselines {

struct NcclOptions {
  /// Number of parallel rings/channels. 0 = one ring per NIC of a server
  /// (NCCL's default saturation strategy).
  int channels = 0;
  /// Use PXN (rail-aligned relay through NVLink) for AllToAll on multi-rail
  /// topologies.
  bool pxn = true;
};

/// Hierarchical ring AllGather (NCCL default): GPUs chained inside each
/// server, chains linked across servers into rings; `channels` rotated rings
/// share the load.
sim::Schedule nccl_ring_allgather(const coll::Collective& coll,
                                  const topo::TopologyGroups& groups, NcclOptions opts = {});

/// Ring ReduceScatter (the reverse flow of the ring AllGather).
sim::Schedule nccl_ring_reduce_scatter(const coll::Collective& coll,
                                       const topo::TopologyGroups& groups, NcclOptions opts = {});

/// Double binary tree Broadcast (NCCL's tree algorithm).
sim::Schedule nccl_tree_broadcast(const coll::Collective& coll,
                                  const topo::TopologyGroups& groups);

/// AllToAll: direct pairwise sends, or PXN (gather onto the rail-aligned
/// GPU over NVLink, then same-rail network send) when opts.pxn and the
/// topology is multi-rail.
sim::Schedule nccl_alltoall(const coll::Collective& coll, const topo::TopologyGroups& groups,
                            NcclOptions opts = {});

/// AllReduce = ring ReduceScatter + ring AllGather.
sim::Schedule nccl_ring_allreduce(const coll::Collective& coll,
                                  const topo::TopologyGroups& groups, NcclOptions opts = {});

/// Dispatch by collective kind; throws for unsupported kinds.
sim::Schedule nccl_schedule(const coll::Collective& coll, const topo::TopologyGroups& groups,
                            NcclOptions opts = {});

}  // namespace syccl::baselines
