// Multi-commodity flow lower bound on collective finish time.
//
// The near-optimal yardstick EXPERIMENTS.md measures synthesized schedules
// against (the role TECCL's LP bound plays in the paper's evaluation):
// relax the whole collective over the whole physical topology to a static
// flow problem and ask how fast the demanded bytes can cross the links,
// ignoring scheduling order entirely. Every feasible schedule — synthesized,
// crafted, or baseline — finishes no earlier than this bound.
//
// Formulation. One commodity per demand unit with fractional per-link flow
// f ∈ [0,1] (a multicast send crosses a link once however many leaves it
// serves): forward collectives get one commodity per chunk (source →
// demanding ranks); reduce collectives are handled by time reversal — an
// aggregation in-tree toward destination d is a broadcast from d in the
// transposed graph, so ReduceScatter/Reduce commodities root at the
// destination and flow over reversed links while charging the real ones.
// AllReduce carries the ReduceScatter and AllGather commodity sets in one
// LP with shared link rows (valid for RS+AG-structured schedules, which is
// how the synthesizer and the baselines build AllReduce). Rows: indegree
// ≥ 1 per (commodity, leaf), relay gating (a non-root node forwards at most
// what it receives), and per-link serialization z ≥ Σ_k bytes_k·β_ℓ·f_{k,ℓ};
// minimize z. The LP bound is maxed with two combinatorial floors that also
// serve as the fallback when the LP would exceed `max_lp_cols` columns:
// per-GPU injection/delivery load over the harmonic capacity of its attached
// links, and the α-aware shortest-path time of the farthest (commodity,
// leaf) pair.
#pragma once

#include "coll/collective.h"
#include "topo/topology.h"

namespace syccl::baselines {

struct FlowBoundOptions {
  /// Columns (commodities × links) above which the LP is skipped and only
  /// the combinatorial floors are reported. Keeps the dense simplex in its
  /// practical size range.
  int max_lp_cols = 2600;
  /// Pivot budget for the LP solve; on exhaustion the combinatorial floors
  /// still stand.
  long max_lp_iters = 200000;
};

struct FlowBoundResult {
  /// Lower bound on any schedule's finish time, seconds.
  double seconds = 0.0;
  /// The flow LP was built and solved to optimality (false: combinatorial
  /// floors only — too large, or the pivot budget ran out).
  bool used_lp = false;
  long lp_iterations = 0;
  int commodities = 0;
  /// LP columns (commodity-link flow variables), 0 when the LP was skipped.
  int lp_cols = 0;
  /// The two combinatorial floors, for gap reporting: port-load bound and
  /// α-aware shortest-path bound.
  double load_bound = 0.0;
  double path_bound = 0.0;
};

/// Computes the flow lower bound for `coll` on `topo`. Supports every
/// CollKind; throws std::invalid_argument if the topology has no GPUs or the
/// collective's rank count exceeds it.
FlowBoundResult flow_lower_bound(const coll::Collective& coll, const topo::Topology& topo,
                                 const FlowBoundOptions& options = {});

}  // namespace syccl::baselines
