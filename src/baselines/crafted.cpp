#include "baselines/crafted.h"

#include <stdexcept>

#include "baselines/nccl.h"

namespace syccl::baselines {

namespace {

int check_ranks(const coll::Collective& coll, const topo::TopologyGroups& groups) {
  const int n = coll.num_ranks();
  if (n != static_cast<int>(groups.group_of.front().size())) {
    throw std::invalid_argument("collective/topology rank mismatch");
  }
  return n;
}

/// True when dimension 1's groups are genuine rails: every group holds
/// exactly one GPU of every dimension-0 server. The improved hierarchical
/// schedule relies on this — stage 1 fans a chunk along its holder's rail to
/// reach *all* other servers, and stage 2 expects each server to hold exactly
/// one member of each rail. Clos leaf tiers (groups spanning a subset of
/// servers) violate it.
bool rails_span_all_servers(const topo::TopologyGroups& groups) {
  if (groups.num_dims() < 2) return false;
  const auto& servers = groups.dims[0].groups;
  for (const auto& rail : groups.dims[1].groups) {
    std::vector<int> count(servers.size(), 0);
    for (int r : rail.ranks) {
      const int sv = groups.group_of[0][static_cast<std::size_t>(r)];
      if (sv < 0) return false;
      ++count[static_cast<std::size_t>(sv)];
    }
    for (int c : count) {
      if (c != 1) return false;
    }
  }
  return true;
}

}  // namespace

sim::Schedule crafted_direct_allgather(const coll::Collective& coll,
                                       const topo::TopologyGroups& groups) {
  const int n = check_ranks(coll, groups);
  sim::Schedule s;
  s.name = "crafted-direct-allgather";
  std::vector<int> piece(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    piece[static_cast<std::size_t>(r)] =
        s.add_piece(sim::Piece{r, coll.chunk_bytes(), r, false, {}});
  }
  // Shifted issue order: at step k, rank r sends to r+k — receivers never
  // see two simultaneous arrivals on one port.
  for (int k = 1; k < n; ++k) {
    for (int r = 0; r < n; ++r) {
      s.add_op(piece[static_cast<std::size_t>(r)], r, (r + k) % n);
    }
  }
  return s;
}

sim::Schedule crafted_hierarchical_allgather(const coll::Collective& coll,
                                             const topo::TopologyGroups& groups) {
  const int n = check_ranks(coll, groups);
  if (groups.num_dims() < 2) {
    // Single server: hierarchical degenerates to direct.
    return crafted_direct_allgather(coll, groups);
  }
  sim::Schedule s;
  s.name = "crafted-hierarchical-allgather";
  std::vector<int> piece(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    piece[static_cast<std::size_t>(r)] =
        s.add_piece(sim::Piece{r, coll.chunk_bytes(), r, false, {}});
  }

  // "Rail" groups: GPUs with the same local index across servers (the dim-1
  // rails on multi-rail fabrics; counterpart sets on Clos).
  const auto& servers = groups.dims[0].groups;
  std::size_t max_locals = 0;
  for (const auto& sv : servers) max_locals = std::max(max_locals, sv.ranks.size());
  std::vector<std::vector<int>> rails(max_locals);
  std::vector<int> rail_of(static_cast<std::size_t>(n), -1);
  for (const auto& sv : servers) {
    for (std::size_t i = 0; i < sv.ranks.size(); ++i) {
      rails[i].push_back(sv.ranks[i]);
      rail_of[static_cast<std::size_t>(sv.ranks[i])] = static_cast<int>(i);
    }
  }

  // Stage 1: inter-server AllGather of the per-GPU chunk within each rail
  // (shifted direct exchange; the per-GPU inter traffic is exactly one chunk
  // to each rail peer — bandwidth-optimal on the network).
  for (const auto& rail : rails) {
    const int m = static_cast<int>(rail.size());
    for (int k = 1; k < m; ++k) {
      for (int i = 0; i < m; ++i) {
        const int src = rail[static_cast<std::size_t>(i)];
        const int dst = rail[static_cast<std::size_t>((i + k) % m)];
        s.add_op(piece[static_cast<std::size_t>(src)], src, dst);
      }
    }
  }
  // Stage 2: intra-server fan-out — every GPU broadcasts everything it now
  // holds (its rail's chunks) to its server mates over NVLink.
  for (const auto& sv : servers) {
    const int m = sv.size();
    for (int k = 1; k < m; ++k) {
      for (int i = 0; i < m; ++i) {
        const int src = sv.ranks[static_cast<std::size_t>(i)];
        const int dst = sv.ranks[static_cast<std::size_t>((i + k) % m)];
        for (int c : rails[static_cast<std::size_t>(rail_of[static_cast<std::size_t>(src)])]) {
          s.add_op(piece[static_cast<std::size_t>(c)], src, dst, 0);
        }
      }
    }
  }
  return s;
}

sim::Schedule crafted_improved_hierarchical_allgather(const coll::Collective& coll,
                                                      const topo::TopologyGroups& groups) {
  const int n = check_ranks(coll, groups);
  if (groups.num_dims() < 2 || groups.dims[1].groups.size() < 2 ||
      !rails_span_all_servers(groups)) {
    throw std::invalid_argument("improved hierarchical needs a multi-rail topology");
  }
  sim::Schedule s;
  s.name = "crafted-improved-hierarchical-allgather";
  std::vector<int> piece(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    piece[static_cast<std::size_t>(r)] =
        s.add_piece(sim::Piece{r, coll.chunk_bytes(), r, false, {}});
  }

  const auto& servers = groups.dims[0].groups;
  const int per_server = servers.front().size();
  if (per_server < 2) {
    throw std::invalid_argument("improved hierarchical needs >= 2 GPUs per server");
  }

  // Stage 0: each chunk hops to one server-mate (its "buddy": local index
  // xor 1), so two rails carry every chunk outward.
  auto buddy = [&](int rank) {
    const int server = groups.group_of[0][static_cast<std::size_t>(rank)];
    const auto& gt = servers[static_cast<std::size_t>(server)];
    const int local = gt.local_of(rank);
    const int other = (local ^ 1) < gt.size() ? (local ^ 1) : (local + 1) % gt.size();
    return gt.ranks[static_cast<std::size_t>(other)];
  };
  for (int r = 0; r < n; ++r) s.add_op(piece[static_cast<std::size_t>(r)], r, buddy(r), 0);

  // Stage 1: the owner and the buddy each fan the chunk out along their own
  // rail to every other server.
  for (int r = 0; r < n; ++r) {
    for (int holder : {r, buddy(r)}) {
      const int rail = groups.group_of[1][static_cast<std::size_t>(holder)];
      for (int peer : groups.dims[1].groups[static_cast<std::size_t>(rail)].ranks) {
        if (groups.group_of[0][static_cast<std::size_t>(peer)] ==
            groups.group_of[0][static_cast<std::size_t>(r)]) {
          continue;  // own server already has it
        }
        s.add_op(piece[static_cast<std::size_t>(r)], holder, peer, 1);
      }
    }
  }

  // Stage 2: inside every server (the home server included — its six other
  // GPUs still need the chunk), the two holders cover the other GPUs,
  // split evenly between them.
  for (int r = 0; r < n; ++r) {
    const int rail_a = groups.group_of[1][static_cast<std::size_t>(r)];
    const int rail_b = groups.group_of[1][static_cast<std::size_t>(buddy(r))];
    for (std::size_t si = 0; si < servers.size(); ++si) {
      const auto& server = servers[si];
      int holder_a = -1, holder_b = -1;
      for (int g : server.ranks) {
        if (groups.group_of[1][static_cast<std::size_t>(g)] == rail_a) holder_a = g;
        if (groups.group_of[1][static_cast<std::size_t>(g)] == rail_b) holder_b = g;
      }
      int toggle = 0;
      for (int g : server.ranks) {
        if (g == holder_a || g == holder_b) continue;
        const int holder = (toggle++ % 2 == 0) ? holder_a : holder_b;
        s.add_op(piece[static_cast<std::size_t>(r)], holder, g, 0);
      }
    }
  }
  return s;
}

std::vector<sim::Schedule> crafted_allgather_suite(const coll::Collective& coll,
                                                   const topo::TopologyGroups& groups,
                                                   bool include_improved) {
  std::vector<sim::Schedule> out;
  sim::Schedule ring = nccl_ring_allgather(coll, groups);
  ring.name = "crafted-ring-allgather";
  out.push_back(std::move(ring));
  out.push_back(crafted_direct_allgather(coll, groups));
  out.push_back(crafted_hierarchical_allgather(coll, groups));
  if (include_improved && groups.num_dims() >= 2 && groups.dims[1].groups.size() > 1 &&
      groups.dims[0].groups.front().size() >= 2 && rails_span_all_servers(groups)) {
    out.push_back(crafted_improved_hierarchical_allgather(coll, groups));
  }
  return out;
}

}  // namespace syccl::baselines
