#include "baselines/nccl.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace syccl::baselines {

namespace {

/// Server membership from dimension 0; falls back to one server.
std::vector<std::vector<int>> servers_of(const topo::TopologyGroups& groups) {
  std::vector<std::vector<int>> servers;
  for (const auto& g : groups.dims.front().groups) servers.push_back(g.ranks);
  return servers;
}

int num_ranks_of(const topo::TopologyGroups& groups) {
  return static_cast<int>(groups.group_of.front().size());
}

/// NCCL saturates the fabric with one ring per server NIC.
int default_channels(const topo::TopologyGroups& groups) {
  if (groups.num_dims() < 2) return 2;
  const auto& server0 = groups.dims[0].groups.front().ranks;
  const auto& net_dim = groups.dims[1];
  std::set<int> ports;
  for (int r : server0) {
    const int g = groups.group_of[1][static_cast<std::size_t>(r)];
    if (g < 0) continue;
    const auto& gt = net_dim.groups[static_cast<std::size_t>(g)];
    ports.insert(gt.up[static_cast<std::size_t>(gt.local_of(r))].port_id);
  }
  return std::max(1, static_cast<int>(ports.size()));
}

/// The ring permutation for channel `c`: each server's GPUs chained starting
/// at local index c·stride, servers concatenated (Fig. 2 generalised). The
/// stride is GPUs-per-NIC so each channel's inter-server crossing exits and
/// enters through a different NIC.
std::vector<int> ring_order(const topo::TopologyGroups& groups, int c, int channels) {
  std::vector<int> order;
  for (const auto& server : servers_of(groups)) {
    const int m = static_cast<int>(server.size());
    const int stride = std::max(1, m / std::max(1, channels));
    for (int j = 0; j < m; ++j) {
      order.push_back(server[static_cast<std::size_t>((c * stride + j) % m)]);
    }
  }
  return order;
}

/// Builds the forward ring AllGather ops for all channels.
sim::Schedule ring_allgather_impl(const coll::Collective& coll,
                                  const topo::TopologyGroups& groups, int channels) {
  const int n = coll.num_ranks();
  if (n != num_ranks_of(groups)) throw std::invalid_argument("collective/topology rank mismatch");
  sim::Schedule s;
  s.name = "nccl-ring-allgather";

  // Piece (chunk r, channel c): 1/channels of rank r's contribution.
  std::vector<std::vector<int>> piece_id(static_cast<std::size_t>(n),
                                         std::vector<int>(static_cast<std::size_t>(channels)));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < channels; ++c) {
      piece_id[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          s.add_piece(sim::Piece{r, coll.chunk_bytes() / channels, r, false, {}});
    }
  }

  // Ops are issued step-major across channels: per-port execution is FIFO in
  // issue order, so chronological interleaving is what lets the channels'
  // rings run concurrently.
  std::vector<std::vector<int>> orders;
  for (int c = 0; c < channels; ++c) orders.push_back(ring_order(groups, c, channels));
  for (int step = 0; step < n - 1; ++step) {
    for (int c = 0; c < channels; ++c) {
      const std::vector<int>& order = orders[static_cast<std::size_t>(c)];
      for (int i = 0; i < n; ++i) {
        const int src = order[static_cast<std::size_t>(i)];
        const int dst = order[static_cast<std::size_t>((i + 1) % n)];
        // At step t, position i forwards the chunk that originated at
        // position (i - t) mod n.
        const int origin_pos = ((i - step) % n + n) % n;
        const int chunk = order[static_cast<std::size_t>(origin_pos)];
        s.add_op(piece_id[static_cast<std::size_t>(chunk)][static_cast<std::size_t>(c)], src, dst);
      }
    }
  }
  return s;
}

/// Reverses a forward schedule into a reduction flow (see core/merge.cpp for
/// the same transformation on synthesized schedules).
sim::Schedule reverse_to_reduce(const sim::Schedule& forward, int num_ranks, std::string name) {
  sim::Schedule out;
  out.name = std::move(name);
  std::vector<int> contributors(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) contributors[static_cast<std::size_t>(r)] = r;
  for (const auto& p : forward.pieces) {
    out.pieces.push_back(sim::Piece{p.origin, p.bytes, -1, true, contributors});
  }
  for (auto it = forward.ops.rbegin(); it != forward.ops.rend(); ++it) {
    sim::TransferOp op = *it;
    std::swap(op.src, op.dst);
    out.ops.push_back(op);
  }
  return out;
}

}  // namespace

sim::Schedule nccl_ring_allgather(const coll::Collective& coll,
                                  const topo::TopologyGroups& groups, NcclOptions opts) {
  const int channels = opts.channels > 0 ? opts.channels : default_channels(groups);
  return ring_allgather_impl(coll, groups, channels);
}

sim::Schedule nccl_ring_reduce_scatter(const coll::Collective& coll,
                                       const topo::TopologyGroups& groups, NcclOptions opts) {
  const int channels = opts.channels > 0 ? opts.channels : default_channels(groups);
  const coll::Collective twin = coll::make_allgather(coll.num_ranks(), coll.total_bytes());
  const sim::Schedule forward = ring_allgather_impl(twin, groups, channels);
  return reverse_to_reduce(forward, coll.num_ranks(), "nccl-ring-reducescatter");
}

sim::Schedule nccl_tree_broadcast(const coll::Collective& coll,
                                  const topo::TopologyGroups& groups) {
  const int n = coll.num_ranks();
  if (n != num_ranks_of(groups)) throw std::invalid_argument("collective/topology rank mismatch");
  const int root = coll.chunks().front().src;
  sim::Schedule s;
  s.name = "nccl-tree-broadcast";

  // Double binary tree: each tree carries half the chunk. Tree 2 uses the
  // reversed rank order so interior nodes of one tree are leaves of the
  // other (NCCL's trick to balance send load).
  int pieces[2];
  std::vector<int> orders[2];
  for (int tree = 0; tree < 2; ++tree) {
    pieces[tree] = s.add_piece(sim::Piece{0, coll.chunk_bytes() / 2.0, root, false, {}});
    // Order ranks with the root first, then ascending (or descending).
    orders[tree].push_back(root);
    for (int d = 1; d < n; ++d) {
      orders[tree].push_back(tree == 0 ? (root + d) % n : (root - d + n) % n);
    }
  }
  // Binary heap layout over `order`: node i has children 2i+1, 2i+2. Emit in
  // node order, interleaving the trees, so per-port issue order stays
  // chronological and the two trees overlap.
  for (int i = 0; i < n; ++i) {
    for (int child : {2 * i + 1, 2 * i + 2}) {
      if (child >= n) continue;
      for (int tree = 0; tree < 2; ++tree) {
        s.add_op(pieces[tree], orders[tree][static_cast<std::size_t>(i)],
                 orders[tree][static_cast<std::size_t>(child)]);
      }
    }
  }
  return s;
}

sim::Schedule nccl_alltoall(const coll::Collective& coll, const topo::TopologyGroups& groups,
                            NcclOptions opts) {
  const int n = coll.num_ranks();
  if (n != num_ranks_of(groups)) throw std::invalid_argument("collective/topology rank mismatch");
  sim::Schedule s;

  // Piece per (src, dst) chunk, indexed positionally like make_alltoall.
  std::vector<std::vector<int>> piece(static_cast<std::size_t>(n),
                                      std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int c = 0; c < coll.num_chunks(); ++c) {
    const auto& chunk = coll.chunks()[static_cast<std::size_t>(c)];
    piece[static_cast<std::size_t>(chunk.src)][static_cast<std::size_t>(chunk.dsts.front())] =
        s.add_piece(sim::Piece{c, coll.chunk_bytes(), chunk.src, false, {}});
  }

  const bool rail_topology = groups.num_dims() >= 3;
  const bool use_pxn = opts.pxn && rail_topology;
  s.name = use_pxn ? "nccl-pxn-alltoall" : "nccl-direct-alltoall";

  const auto& server_dim = groups.group_of[0];
  const auto& rail_dim = groups.num_dims() >= 2 ? groups.group_of[1] : groups.group_of[0];

  for (int k = 1; k < n; ++k) {  // shifted order avoids receiver hot spots
    for (int src = 0; src < n; ++src) {
      const int dst = (src + k) % n;
      const int p = piece[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      if (p < 0) continue;
      const bool same_server = server_dim[static_cast<std::size_t>(src)] ==
                               server_dim[static_cast<std::size_t>(dst)];
      const bool same_rail =
          rail_dim[static_cast<std::size_t>(src)] == rail_dim[static_cast<std::size_t>(dst)];
      if (use_pxn && !same_server && !same_rail) {
        // PXN: relay over NVLink to the server-mate sharing dst's rail, then
        // a same-rail network hop.
        const auto& server =
            groups.dims[0].groups[static_cast<std::size_t>(
                server_dim[static_cast<std::size_t>(src)])];
        int relay = -1;
        for (int r : server.ranks) {
          if (rail_dim[static_cast<std::size_t>(r)] == rail_dim[static_cast<std::size_t>(dst)]) {
            relay = r;
            break;
          }
        }
        if (relay >= 0 && relay != src) {
          s.add_op(p, src, relay, 0);
          s.add_op(p, relay, dst, 1);
          continue;
        }
      }
      s.add_op(p, src, dst);
    }
  }
  return s;
}

sim::Schedule nccl_ring_allreduce(const coll::Collective& coll,
                                  const topo::TopologyGroups& groups, NcclOptions opts) {
  sim::Schedule rs = nccl_ring_reduce_scatter(
      coll::make_reduce_scatter(coll.num_ranks(), coll.total_bytes()), groups, opts);
  const sim::Schedule ag = nccl_ring_allgather(
      coll::make_allgather(coll.num_ranks(), coll.total_bytes()), groups, opts);
  rs.append_sequential(ag);
  rs.name = "nccl-ring-allreduce";
  return rs;
}

sim::Schedule nccl_schedule(const coll::Collective& coll, const topo::TopologyGroups& groups,
                            NcclOptions opts) {
  switch (coll.kind()) {
    case coll::CollKind::AllGather: return nccl_ring_allgather(coll, groups, opts);
    case coll::CollKind::ReduceScatter: return nccl_ring_reduce_scatter(coll, groups, opts);
    case coll::CollKind::Broadcast: return nccl_tree_broadcast(coll, groups);
    case coll::CollKind::AllToAll: return nccl_alltoall(coll, groups, opts);
    case coll::CollKind::AllReduce: return nccl_ring_allreduce(coll, groups, opts);
    default:
      throw std::invalid_argument("no NCCL baseline for this collective kind");
  }
}

}  // namespace syccl::baselines
