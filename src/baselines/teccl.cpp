#include "baselines/teccl.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/simulator.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace syccl::baselines {

namespace {

struct PairParams {
  int dim = -1;
  double alpha = 0.0;
  double beta = 0.0;
  int up_port = -1;
  int down_port = -1;
};

/// Whole-topology pair table: communication parameters for every (src, dst).
struct PairTable {
  int n = 0;
  std::vector<PairParams> pairs;  // n*n

  const PairParams& at(int s, int d) const {
    return pairs[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(d)];
  }
};

PairTable build_pair_table(const topo::TopologyGroups& groups) {
  PairTable t;
  t.n = static_cast<int>(groups.group_of.front().size());
  t.pairs.resize(static_cast<std::size_t>(t.n) * static_cast<std::size_t>(t.n));
  for (int s = 0; s < t.n; ++s) {
    for (int d = 0; d < t.n; ++d) {
      if (s == d) continue;
      PairParams& p =
          t.pairs[static_cast<std::size_t>(s) * static_cast<std::size_t>(t.n) +
                  static_cast<std::size_t>(d)];
      p.dim = groups.best_common_dim(s, d);
      if (p.dim < 0) throw std::invalid_argument("disconnected GPU pair");
      const auto& gt =
          groups.group(p.dim, groups.group_of[static_cast<std::size_t>(p.dim)]
                                             [static_cast<std::size_t>(s)]);
      const int ls = gt.local_of(s);
      const int ld = gt.local_of(d);
      p.alpha = gt.pair_alpha(ls, ld);
      p.beta = gt.pair_beta(ls, ld);
      p.up_port = gt.up[static_cast<std::size_t>(ls)].port_id;
      p.down_port = gt.down[static_cast<std::size_t>(ld)].port_id;
    }
  }
  return t;
}

struct GlobalDemand {
  struct Piece {
    int chunk = -1;
    int origin = -1;
    double bytes = 0.0;
    std::vector<int> dsts;
  };
  std::vector<Piece> pieces;
};

GlobalDemand forward_demand(const coll::Collective& coll, int split) {
  GlobalDemand gd;
  for (int c = 0; c < coll.num_chunks(); ++c) {
    const auto& chunk = coll.chunks()[static_cast<std::size_t>(c)];
    for (int sl = 0; sl < split; ++sl) {
      GlobalDemand::Piece p;
      p.chunk = c;
      p.origin = chunk.src;
      p.bytes = coll.chunk_bytes() / split;
      p.dsts = chunk.dsts;
      gd.pieces.push_back(std::move(p));
    }
  }
  return gd;
}

/// One randomized interval-greedy pass over the global epoch grid. Returns
/// nullopt when the deadline expires mid-pass.
std::optional<sim::Schedule> greedy_pass(const GlobalDemand& gd, const PairTable& pairs,
                                         double tau, util::Rng& rng,
                                         const util::Stopwatch& clock, double deadline) {
  const int n = pairs.n;
  const int np = static_cast<int>(gd.pieces.size());

  struct PieceState {
    std::vector<int> arrival;  // epoch piece becomes usable at rank, -1 never
    std::vector<int> pending;  // unserved dsts
  };
  std::vector<PieceState> state(static_cast<std::size_t>(np));
  long remaining = 0;
  for (int p = 0; p < np; ++p) {
    auto& ps = state[static_cast<std::size_t>(p)];
    ps.arrival.assign(static_cast<std::size_t>(n), -1);
    ps.arrival[static_cast<std::size_t>(gd.pieces[static_cast<std::size_t>(p)].origin)] = 0;
    ps.pending = gd.pieces[static_cast<std::size_t>(p)].dsts;
    remaining += static_cast<long>(ps.pending.size());
  }

  // Port usage per (port id, direction): epochs → used units.
  std::map<std::pair<int, int>, std::vector<int>> usage;
  auto occupies = [&](double beta, double bytes) {
    return std::max(1, static_cast<int>(std::ceil(beta * bytes / tau - 1e-9)));
  };
  auto capacity = [&](double beta, double bytes) {
    return std::max(1, static_cast<int>(std::floor(tau / (beta * bytes) + 1e-9)));
  };
  auto port_free = [&](int port, int dir, int t, int occ, int cap) {
    auto& u = usage[{port, dir}];
    if (static_cast<int>(u.size()) < t + occ) u.resize(static_cast<std::size_t>(t + occ), 0);
    for (int o = 0; o < occ; ++o) {
      if (u[static_cast<std::size_t>(t + o)] >= cap) return false;
    }
    return true;
  };
  auto port_take = [&](int port, int dir, int t, int occ) {
    auto& u = usage[{port, dir}];
    for (int o = 0; o < occ; ++o) ++u[static_cast<std::size_t>(t + o)];
  };

  struct PlacedOp {
    int epoch;
    int piece;
    int src;
    int dst;
    int dim;
  };
  std::vector<PlacedOp> placed;

  // Randomized piece priority — different restarts explore different
  // interleavings (the "solver budget" knob).
  std::vector<int> order(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) order[static_cast<std::size_t>(p)] = p;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  const long max_epochs = 4096 + 8L * np * n;
  for (int t = 0; remaining > 0; ++t) {
    if (t > max_epochs) return std::nullopt;
    if ((t & 15) == 0 && clock.elapsed_seconds() > deadline) return std::nullopt;
    bool progress = true;
    while (progress) {
      progress = false;
      for (int p : order) {
        auto& ps = state[static_cast<std::size_t>(p)];
        if (ps.pending.empty()) continue;
        const double bytes = gd.pieces[static_cast<std::size_t>(p)].bytes;
        for (std::size_t di = 0; di < ps.pending.size();) {
          const int d = ps.pending[di];
          // Pick the available holder with the cheapest pair parameters and
          // free ports at epoch t.
          int best_src = -1;
          double best_cost = std::numeric_limits<double>::infinity();
          for (int s = 0; s < n; ++s) {
            const int arr = ps.arrival[static_cast<std::size_t>(s)];
            if (arr < 0 || arr > t || s == d) continue;
            const PairParams& pp = pairs.at(s, d);
            const int occ = occupies(pp.beta, bytes);
            const int cap = capacity(pp.beta, bytes);
            if (!port_free(pp.up_port, 0, t, occ, cap) ||
                !port_free(pp.down_port, 1, t, occ, cap)) {
              continue;
            }
            const double cost = pp.alpha + pp.beta * bytes;
            if (cost < best_cost) {
              best_cost = cost;
              best_src = s;
            }
          }
          if (best_src < 0) {
            ++di;
            continue;
          }
          const PairParams& pp = pairs.at(best_src, d);
          const int occ = occupies(pp.beta, bytes);
          port_take(pp.up_port, 0, t, occ);
          port_take(pp.down_port, 1, t, occ);
          const int lat = std::max(1, static_cast<int>(std::ceil(
                                          (pp.alpha + pp.beta * bytes) / tau - 1e-9)));
          placed.push_back(PlacedOp{t, p, best_src, d, pp.dim});
          ps.arrival[static_cast<std::size_t>(d)] = t + lat;
          ps.pending[di] = ps.pending.back();
          ps.pending.pop_back();
          --remaining;
          progress = true;
        }
      }
    }
  }

  std::stable_sort(placed.begin(), placed.end(),
                   [](const PlacedOp& a, const PlacedOp& b) { return a.epoch < b.epoch; });
  sim::Schedule s;
  s.name = "teccl";
  for (int p = 0; p < np; ++p) {
    const auto& gp = gd.pieces[static_cast<std::size_t>(p)];
    s.add_piece(sim::Piece{gp.chunk, gp.bytes, gp.origin, false, {}});
  }
  for (const auto& op : placed) s.add_op(op.piece, op.src, op.dst, op.dim);
  return s;
}

sim::Schedule reverse_to_reduce(const sim::Schedule& forward, int num_ranks) {
  sim::Schedule out;
  out.name = "teccl-reduce";
  std::vector<int> contributors(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) contributors[static_cast<std::size_t>(r)] = r;
  for (const auto& p : forward.pieces) {
    out.pieces.push_back(sim::Piece{p.origin, p.bytes, -1, true, contributors});
  }
  for (auto it = forward.ops.rbegin(); it != forward.ops.rend(); ++it) {
    sim::TransferOp op = *it;
    std::swap(op.src, op.dst);
    out.ops.push_back(op);
  }
  return out;
}

int default_split(const topo::TopologyGroups& groups) {
  if (groups.num_dims() < 2) return 2;
  // One slice per rail keeps multipath routing available.
  return std::max(2, static_cast<int>(groups.dims[1].groups.size()) / 2);
}

}  // namespace

TecclResult teccl_synthesize(const coll::Collective& coll, const topo::TopologyGroups& groups,
                             const TecclOptions& options) {
  using coll::CollKind;
  if (coll.kind() == CollKind::AllReduce) {
    const coll::Collective rs = coll::make_reduce_scatter(coll.num_ranks(), coll.total_bytes());
    const coll::Collective ag = coll::make_allgather(coll.num_ranks(), coll.total_bytes());
    TecclOptions half = options;
    half.time_budget_s = options.time_budget_s / 2;
    TecclResult first = teccl_synthesize(rs, groups, half);
    TecclResult second = teccl_synthesize(ag, groups, half);
    first.schedule.append_sequential(second.schedule);
    first.schedule.name = "teccl-allreduce";
    first.synth_seconds += second.synth_seconds;
    first.timed_out = first.timed_out || second.timed_out;
    first.predicted_time += second.predicted_time;
    return first;
  }

  const bool reverse = coll.kind() == CollKind::ReduceScatter;
  const coll::Collective forward =
      reverse ? coll::make_allgather(coll.num_ranks(), coll.total_bytes()) : coll;
  if (forward.kind() != CollKind::AllGather && forward.kind() != CollKind::AllToAll &&
      forward.kind() != CollKind::Broadcast && forward.kind() != CollKind::Scatter) {
    throw std::invalid_argument("TECCL baseline does not handle this collective kind");
  }

  util::Stopwatch clock;
  const PairTable pairs = build_pair_table(groups);
  const int split = options.split > 0 ? options.split : default_split(groups);
  const GlobalDemand gd = forward_demand(forward, split);

  // τ from the fastest pair (Appendix A: one grid for all link classes).
  double beta_fast = std::numeric_limits<double>::infinity();
  for (const auto& p : pairs.pairs) {
    if (p.dim >= 0) beta_fast = std::min(beta_fast, p.beta);
  }
  const double piece_bytes = gd.pieces.front().bytes;
  const double tau = std::max(options.E, 0.05) * beta_fast * piece_bytes;

  const sim::Simulator simulator(groups);
  util::Rng rng(options.seed);

  TecclResult result;
  double best_time = std::numeric_limits<double>::infinity();
  while (clock.elapsed_seconds() < options.time_budget_s) {
    const auto pass = greedy_pass(gd, pairs, tau, rng, clock, options.time_budget_s);
    if (!pass.has_value()) break;
    ++result.restarts;
    sim::Schedule candidate = reverse ? reverse_to_reduce(*pass, coll.num_ranks()) : *pass;
    try {
      const double t = simulator.time_collective(candidate, coll);
      if (t < best_time) {
        best_time = t;
        result.schedule = std::move(candidate);
        result.predicted_time = t;
      }
    } catch (const std::exception& e) {
      SYCCL_WARN << "TECCL pass produced invalid schedule: " << e.what();
    }
  }
  result.synth_seconds = clock.elapsed_seconds();
  result.timed_out = !std::isfinite(best_time);
  return result;
}

}  // namespace syccl::baselines
