#include "baselines/flow_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lp/simplex.h"
#include "obs/trace.h"

namespace syccl::baselines {

namespace {

/// One demand unit of the relaxation. `root` is the node the flow fans out
/// from; for reduce traffic that is the aggregation destination and the flow
/// runs over reversed links (`transposed`), charging the real ones.
struct Commodity {
  topo::NodeId root = topo::kInvalidNode;
  std::vector<topo::NodeId> leaves;
  double bytes = 0.0;
  bool transposed = false;
};

std::vector<Commodity> build_commodities(const coll::Collective& coll,
                                         const topo::Topology& topo) {
  const auto& gpus = topo.gpus();
  const auto gpu = [&](int rank) { return gpus[static_cast<std::size_t>(rank)]; };
  std::vector<Commodity> out;
  const double b = coll.chunk_bytes();

  const auto add_forward_chunks = [&]() {
    for (const coll::Chunk& c : coll.chunks()) {
      if (c.dsts.empty()) continue;
      Commodity k;
      k.root = gpu(c.src);
      for (int d : c.dsts) k.leaves.push_back(gpu(d));
      k.bytes = b;
      out.push_back(std::move(k));
    }
  };
  // Aggregation toward each destination, grouped so that partials merged en
  // route are charged once per link (the in-tree is a transposed broadcast).
  const auto add_reduce_to = [&](int dst, const std::vector<int>& contributors, double bytes) {
    if (contributors.empty()) return;
    Commodity k;
    k.root = gpu(dst);
    for (int s : contributors) k.leaves.push_back(gpu(s));
    k.bytes = bytes;
    k.transposed = true;
    out.push_back(std::move(k));
  };

  switch (coll.kind()) {
    case coll::CollKind::Reduce:
    case coll::CollKind::ReduceScatter: {
      std::vector<std::vector<int>> by_dst(static_cast<std::size_t>(coll.num_ranks()));
      for (const coll::Chunk& c : coll.chunks()) {
        for (int d : c.dsts) by_dst[static_cast<std::size_t>(d)].push_back(c.src);
      }
      for (int d = 0; d < coll.num_ranks(); ++d) {
        add_reduce_to(d, by_dst[static_cast<std::size_t>(d)], b);
      }
      break;
    }
    case coll::CollKind::AllReduce: {
      // RS + AG commodity sets sharing the link rows (§4.3 synthesis shape).
      const int n = coll.num_ranks();
      for (int r = 0; r < n; ++r) {
        std::vector<int> others;
        for (int s = 0; s < n; ++s) {
          if (s != r) others.push_back(s);
        }
        add_reduce_to(r, others, b);  // ReduceScatter phase
        Commodity ag;                 // AllGather phase
        ag.root = gpu(r);
        for (int s : others) ag.leaves.push_back(gpu(s));
        ag.bytes = b;
        out.push_back(std::move(ag));
      }
      break;
    }
    default:
      add_forward_chunks();
      break;
  }
  return out;
}

/// α-aware shortest-path time from the commodity root to its farthest leaf:
/// every hop of a message costs at least α + β·bytes.
double path_bound_of(const Commodity& k, const topo::Topology& topo) {
  constexpr double kUnreached = std::numeric_limits<double>::infinity();
  std::vector<double> dist(topo.num_nodes(), kUnreached);
  using Entry = std::pair<double, topo::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(k.root)] = 0.0;
  heap.push({0.0, k.root});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    const auto& links = k.transposed ? topo.in_links(v) : topo.out_links(v);
    for (topo::LinkId lid : links) {
      const topo::Link& l = topo.link(lid);
      const topo::NodeId to = k.transposed ? l.src : l.dst;
      const double nd = d + l.alpha + l.beta * k.bytes;
      if (nd < dist[static_cast<std::size_t>(to)]) {
        dist[static_cast<std::size_t>(to)] = nd;
        heap.push({nd, to});
      }
    }
  }
  double worst = 0.0;
  for (topo::NodeId leaf : k.leaves) {
    const double d = dist[static_cast<std::size_t>(leaf)];
    if (d >= kUnreached) {
      throw std::invalid_argument("flow_lower_bound: demand leaf unreachable in topology");
    }
    worst = std::max(worst, d);
  }
  return worst;
}

/// Per-GPU injection/delivery floor: the bytes a GPU must emit (or absorb)
/// cross its attached links, whose aggregate rate is Σ 1/β.
double load_bound_of(const std::vector<Commodity>& commodities, const topo::Topology& topo) {
  std::vector<double> in_load(topo.num_nodes(), 0.0), out_load(topo.num_nodes(), 0.0);
  for (const Commodity& k : commodities) {
    if (k.transposed) {
      // Aggregation: every leaf injects its partial; the root absorbs at
      // least one merged message.
      for (topo::NodeId leaf : k.leaves) out_load[static_cast<std::size_t>(leaf)] += k.bytes;
      in_load[static_cast<std::size_t>(k.root)] += k.bytes;
    } else {
      for (topo::NodeId leaf : k.leaves) in_load[static_cast<std::size_t>(leaf)] += k.bytes;
      out_load[static_cast<std::size_t>(k.root)] += k.bytes;
    }
  }
  double worst = 0.0;
  for (topo::NodeId v = 0; v < static_cast<topo::NodeId>(topo.num_nodes()); ++v) {
    const auto rate_of = [&](const std::vector<topo::LinkId>& links) {
      double rate = 0.0;
      for (topo::LinkId lid : links) {
        const double beta = topo.link(lid).beta;
        if (beta > 0.0) rate += 1.0 / beta;
      }
      return rate;
    };
    const double in_rate = rate_of(topo.in_links(v));
    const double out_rate = rate_of(topo.out_links(v));
    if (in_load[static_cast<std::size_t>(v)] > 0.0 && in_rate > 0.0) {
      worst = std::max(worst, in_load[static_cast<std::size_t>(v)] / in_rate);
    }
    if (out_load[static_cast<std::size_t>(v)] > 0.0 && out_rate > 0.0) {
      worst = std::max(worst, out_load[static_cast<std::size_t>(v)] / out_rate);
    }
  }
  return worst;
}

}  // namespace

FlowBoundResult flow_lower_bound(const coll::Collective& coll, const topo::Topology& topo,
                                 const FlowBoundOptions& options) {
  SYCCL_TRACE_SPAN(span, "flow.lower_bound", "flow");
  if (topo.num_gpus() == 0) throw std::invalid_argument("flow_lower_bound: topology has no GPUs");
  if (coll.num_ranks() > static_cast<int>(topo.num_gpus())) {
    throw std::invalid_argument("flow_lower_bound: more ranks than GPUs");
  }

  const std::vector<Commodity> commodities = build_commodities(coll, topo);
  FlowBoundResult res;
  res.commodities = static_cast<int>(commodities.size());
  res.load_bound = load_bound_of(commodities, topo);
  for (const Commodity& k : commodities) {
    res.path_bound = std::max(res.path_bound, path_bound_of(k, topo));
  }
  res.seconds = std::max(res.load_bound, res.path_bound);

  const int num_links = static_cast<int>(topo.num_links());
  const long cols = static_cast<long>(commodities.size()) * num_links + 1;
  if (!commodities.empty() && num_links > 0 && cols <= options.max_lp_cols) {
    // Flow LP: one f variable per (commodity, link) plus z = per-link busy
    // time; flow direction follows the commodity's orientation but the link
    // row charges the real link either way.
    lp::Problem pb;
    const auto fvar = [&](int k, topo::LinkId l) {
      return k * num_links + static_cast<int>(l);
    };
    for (long c = 0; c + 1 < cols; ++c) pb.add_var(0.0, 1.0, 0.0);
    const int z = pb.add_var(0.0, lp::kInf, 1.0);

    for (int k = 0; k < res.commodities; ++k) {
      const Commodity& com = commodities[static_cast<std::size_t>(k)];
      // Indegree: each leaf receives (forward) / emits (transposed) once.
      for (topo::NodeId leaf : com.leaves) {
        lp::Constraint c;
        const auto& links = com.transposed ? topo.out_links(leaf) : topo.in_links(leaf);
        for (topo::LinkId lid : links) c.terms.push_back({fvar(k, lid), 1.0});
        if (c.terms.empty()) {
          res.used_lp = false;  // leaf with no attachment: floors still hold
          return res;
        }
        c.rel = lp::Relation::GreaterEq;
        c.rhs = 1.0;
        pb.add_constraint(std::move(c));
      }
      // Relay gating: non-root nodes forward at most what they receive.
      for (topo::NodeId v = 0; v < static_cast<topo::NodeId>(topo.num_nodes()); ++v) {
        if (v == com.root) continue;
        const auto& outs = com.transposed ? topo.in_links(v) : topo.out_links(v);
        const auto& ins = com.transposed ? topo.out_links(v) : topo.in_links(v);
        for (topo::LinkId out : outs) {
          lp::Constraint c;
          c.terms.push_back({fvar(k, out), 1.0});
          for (topo::LinkId in : ins) c.terms.push_back({fvar(k, in), -1.0});
          c.rel = lp::Relation::LessEq;
          c.rhs = 0.0;
          pb.add_constraint(std::move(c));
        }
      }
    }
    // Per-link serialization: everything crossing ℓ transmits back to back.
    for (int l = 0; l < num_links; ++l) {
      lp::Constraint c;
      const double beta = topo.link(l).beta;
      for (int k = 0; k < res.commodities; ++k) {
        c.terms.push_back({fvar(k, l), commodities[static_cast<std::size_t>(k)].bytes * beta});
      }
      c.terms.push_back({z, -1.0});
      c.rel = lp::Relation::LessEq;
      c.rhs = 0.0;
      pb.add_constraint(std::move(c));
    }

    const lp::Solution sol = lp::solve(pb, options.max_lp_iters);
    res.lp_iterations = sol.iterations;
    if (sol.status == lp::Status::Optimal) {
      res.used_lp = true;
      res.lp_cols = static_cast<int>(cols);
      res.seconds = std::max(res.seconds, sol.objective);
    }
  }
  span.annotate("seconds", res.seconds);
  span.annotate("commodities", static_cast<double>(res.commodities));
  span.annotate("used_lp", res.used_lp ? 1.0 : 0.0);
  return res;
}

}  // namespace syccl::baselines
