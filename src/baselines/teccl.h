// TECCL baseline: whole-collective epoch scheduling (paper §2.3, Appendix A;
// reimplementation of the approach in Liu et al., SIGCOMM'24).
//
// TECCL encodes the *entire* collective over the *entire* topology with one
// epoch duration τ, which is exactly its weakness on multi-dimensional
// clusters: NVLink and network transmissions cannot both fit the grid
// (Appendix A.2), and the model size explodes with GPU count. We reproduce
// the approach structurally:
//   * one global epoch grid derived from the fastest link class;
//   * per-pair latency/occupancy in that grid;
//   * an interval-greedy scheduler over all chunks at once (TECCL's
//     scalability fallback), improved by randomized restarts until the time
//     budget is exhausted — mirroring how the MILP burns its wall-clock
//     budget;
//   * a hard time budget after which the best incumbent is returned, or a
//     timeout is reported if no feasible schedule was found at all.
#pragma once

#include <string>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "topo/groups.h"

namespace syccl::baselines {

struct TecclOptions {
  /// Epoch knob on the fastest link class (τ = E·β_fast·s).
  double E = 1.0;
  /// Wall-clock budget; the scheduler restarts with new randomized
  /// orderings until it runs out (stands in for the MILP's solve budget —
  /// the paper ran TECCL with a 10 h timeout).
  double time_budget_s = 10.0;
  /// Chunk split factor for multipath routing (0 = #NICs per server).
  int split = 0;
  /// Restart seed.
  std::uint64_t seed = 1;
};

struct TecclResult {
  sim::Schedule schedule;
  double synth_seconds = 0.0;
  bool timed_out = false;  ///< budget expired before any feasible schedule
  int restarts = 0;
  double predicted_time = 0.0;
};

/// Synthesizes a schedule for AllGather / ReduceScatter / AllToAll /
/// Broadcast / AllReduce. Throws std::invalid_argument otherwise.
TecclResult teccl_synthesize(const coll::Collective& coll, const topo::TopologyGroups& groups,
                             const TecclOptions& options = {});

}  // namespace syccl::baselines
