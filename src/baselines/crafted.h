// Expert hand-crafted schedules (paper Appendix C, Figs. 21–22).
//
// Three classic AllGather schedules plus the paper's "improved hierarchical"
// variant that SyCCL's winning sketch inspired:
//   ring         — multiple rotated rings covering all inter-machine links
//   direct       — every GPU sends its chunk straight to every other GPU
//   hierarchical — intra-server AllGather, then same-rail inter-server
//                  AllGather (each rail peer relays its server's chunks)
//   improved     — each chunk first hops to one server-mate, the two holders
//                  fan out along their two rails, then three NVLink sends
//                  per holder finish each server (matches the H800 testbed's
//                  NVLink:rail bandwidth ratio)
#pragma once

#include <string>
#include <vector>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "topo/groups.h"

namespace syccl::baselines {

sim::Schedule crafted_direct_allgather(const coll::Collective& coll,
                                       const topo::TopologyGroups& groups);

sim::Schedule crafted_hierarchical_allgather(const coll::Collective& coll,
                                             const topo::TopologyGroups& groups);

/// The Fig. 22 improved hierarchical schedule. Requires a multi-rail
/// topology with ≥ 2 GPUs per server; throws otherwise.
sim::Schedule crafted_improved_hierarchical_allgather(const coll::Collective& coll,
                                                      const topo::TopologyGroups& groups);

/// All applicable hand-crafted AllGather schedules for this topology (ring
/// reuses the NCCL generator — the crafted ring differs only in tuning).
std::vector<sim::Schedule> crafted_allgather_suite(const coll::Collective& coll,
                                                   const topo::TopologyGroups& groups,
                                                   bool include_improved);

}  // namespace syccl::baselines
