// Fixed-size worker pool used to solve independent sub-demands in parallel
// (§5.3 "Utilizing isomorphism and parallelism to accelerate synthesis").
//
// The pool is a plain FIFO work queue: sub-demand solves are coarse-grained
// (milliseconds to seconds), so work stealing would buy nothing. parallel_for
// blocks the caller until every task finished and rethrows the first captured
// exception, so callers never observe partially-completed batches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace syccl::util {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. 0 means
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// If any task throws, the first exception is rethrown in the caller after
  /// all tasks have drained.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace syccl::util
