// Fixed-size worker pool used to solve independent sub-demands and evaluate
// candidate schedules in parallel (§5.3 "Utilizing isomorphism and
// parallelism to accelerate synthesis").
//
// The pool is a plain FIFO work queue: tasks are coarse-grained
// (milliseconds to seconds), so work stealing would buy nothing.
// parallel_for uses chunked dispatch — one helper task per worker, indices
// claimed from a shared atomic counter — so per-item allocation and wake-up
// costs are amortised over the batch. It blocks the caller until every index
// finished and rethrows the first captured exception, so callers never
// observe partially-completed batches. The caller itself claims indices,
// which makes nested parallel_for calls deadlock-free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace syccl::util {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. 0 means
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// If any task throws, the first exception is rethrown in the caller after
  /// all tasks have drained.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Enqueues a single task and returns its future (fire-and-wait-later, the
  /// shape serve::Broker needs for asynchronous miss synthesis). Exceptions
  /// propagate through the future. Unlike parallel_for the caller does not
  /// participate, so a submit() from within a pool task that then blocks on
  /// the future can deadlock a fully-busy pool — callers that wait must do so
  /// from outside the pool (the broker waits on connection threads).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

 private:
  /// Enqueues a type-erased task (submit's untemplated core).
  void post(std::function<void()> task);


  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace syccl::util
