// Wall-clock stopwatch used by synthesis-time measurements (Fig. 16, Table 5).
#pragma once

#include <chrono>

namespace syccl::util {

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  /// Restarts the stopwatch from zero.
  void reset();

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates named phase durations (search / combine / solve1 / solve2 in
/// the Fig. 16(b) breakdown).
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase bucket (index-based, caller defines).
  void add(int phase, double seconds);

  double total(int phase) const;
  double grand_total() const;

  static constexpr int kMaxPhases = 8;

 private:
  double buckets_[kMaxPhases] = {};
};

}  // namespace syccl::util
