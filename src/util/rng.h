// Deterministic xorshift128+ random number generator.
//
// All stochastic choices in the library (tie-breaking, sampling in tests and
// benches) go through this generator so that every run is reproducible from a
// seed. We deliberately avoid std::mt19937's platform-dependent seeding paths.
#pragma once

#include <cstdint>

namespace syccl::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into two non-zero state words.
    state_[0] = splitmix(seed);
    state_[1] = splitmix(state_[0]);
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t x = state_[0];
    const std::uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static std::uint64_t splitmix(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static std::uint64_t splitmix(std::uint64_t&& x) {
    std::uint64_t v = x;
    return splitmix(v);
  }

  std::uint64_t state_[2];
};

}  // namespace syccl::util
