// Strict numeric CLI parsers shared by the tools.
//
// Every tool accepts count- and size-like flags from untrusted command
// lines; std::stoi/std::stoull throw out of main on junk and silently accept
// trailing garbage ("12abc"). These helpers parse the *whole* string or
// return nullopt, never throw, and reject signs on unsigned values — the
// contract the WILL_FAIL ctest junk-flag tests pin.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace syccl::util::cli {

/// Strict unsigned parse: decimal or 0x..., whole string, no sign. Returns
/// nullopt on junk or overflow.
std::optional<std::uint64_t> parse_u64(const std::string& s);

/// Byte count with an optional K/M/G suffix (powers of 1024): "64M", "4096",
/// "0x100K". Returns nullopt on junk, overflow, or a sign.
std::optional<std::uint64_t> parse_bytes(const std::string& s);

/// Strict bounded int parse for count-like flags: whole string, value in
/// [lo, hi]. Returns nullopt otherwise.
std::optional<int> parse_int(const std::string& s, int lo, int hi);

}  // namespace syccl::util::cli
