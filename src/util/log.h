// Lightweight leveled logging for the SyCCL library.
//
// Logging goes to stderr so that bench/example stdout stays machine-parseable.
// The level is process-global and defaults to Warn; benches raise it to Info
// when diagnosing synthesis behaviour.
#pragma once

#include <sstream>
#include <string>

namespace syccl::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the process-global log level. Thread-safe (atomic store).
void set_log_level(LogLevel level);

/// Returns the current process-global log level.
LogLevel log_level();

/// Emits one formatted line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace syccl::util

#define SYCCL_LOG(level)                                        \
  if (static_cast<int>(level) < static_cast<int>(::syccl::util::log_level())) { \
  } else                                                        \
    ::syccl::util::detail::LogStream(level)

#define SYCCL_TRACE SYCCL_LOG(::syccl::util::LogLevel::Trace)
#define SYCCL_DEBUG SYCCL_LOG(::syccl::util::LogLevel::Debug)
#define SYCCL_INFO SYCCL_LOG(::syccl::util::LogLevel::Info)
#define SYCCL_WARN SYCCL_LOG(::syccl::util::LogLevel::Warn)
#define SYCCL_ERROR SYCCL_LOG(::syccl::util::LogLevel::Error)
