#include "util/stopwatch.h"

#include <stdexcept>

namespace syccl::util {

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

void PhaseTimer::add(int phase, double seconds) {
  if (phase < 0 || phase >= kMaxPhases) throw std::out_of_range("PhaseTimer phase index");
  buckets_[phase] += seconds;
}

double PhaseTimer::total(int phase) const {
  if (phase < 0 || phase >= kMaxPhases) throw std::out_of_range("PhaseTimer phase index");
  return buckets_[phase];
}

double PhaseTimer::grand_total() const {
  double sum = 0;
  for (double b : buckets_) sum += b;
  return sum;
}

}  // namespace syccl::util
