#include "util/cli.h"

namespace syccl::util::cli {

namespace {

/// stoull/stoi skip leading whitespace; strict flags must not.
bool starts_with_digit(const std::string& s) {
  return !s.empty() && s[0] >= '0' && s[0] <= '9';
}

}  // namespace

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (!starts_with_digit(s)) return std::nullopt;
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(s, &pos, 0);
    if (pos != s.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {  // std::invalid_argument, std::out_of_range
    return std::nullopt;
  }
}

std::optional<std::uint64_t> parse_bytes(const std::string& s) {
  if (!starts_with_digit(s)) return std::nullopt;
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(s, &pos, 0);
    if (pos == s.size()) return value;
    if (pos + 1 == s.size()) {
      // Reject suffixed values that would overflow the shift.
      const auto shifted = [&](int bits) -> std::optional<std::uint64_t> {
        if (value > (~0ull >> bits)) return std::nullopt;
        return value << bits;
      };
      switch (s[pos]) {
        case 'k': case 'K': return shifted(10);
        case 'm': case 'M': return shifted(20);
        case 'g': case 'G': return shifted(30);
        default: break;
      }
    }
  } catch (const std::exception&) {  // std::invalid_argument, std::out_of_range
  }
  return std::nullopt;
}

std::optional<int> parse_int(const std::string& s, int lo, int hi) {
  if (!starts_with_digit(s) && !(s.size() > 1 && s[0] == '-' && s[1] >= '0' && s[1] <= '9')) {
    return std::nullopt;
  }
  try {
    std::size_t pos = 0;
    const int value = std::stoi(s, &pos);
    if (pos != s.size() || value < lo || value > hi) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace syccl::util::cli
