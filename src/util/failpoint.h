// Process-wide registry of named failpoints for fault-injection testing.
//
// A failpoint is a named site in production code (I/O boundaries, mostly)
// that can be armed to misbehave on demand: throw, tear a write after N
// bytes, storm EINTR, delay, or crash the process outright. Disarmed
// failpoints cost one relaxed atomic load — the registry is safe to consult
// on hot paths and compiled into every build, so the exact binary that
// serves production is the one the chaos suite tortures.
//
// Activation:
//   * programmatic (tests):  util::Failpoints::instance().enable(
//                                "serve.library.entry_write", "torn:16");
//   * environment:           SYCCL_FAILPOINTS="a=error;b=delay:50" — parsed
//                            on first registry use, so tools inherit faults
//                            without code changes;
//   * CLI:                   syccl_serve --failpoint name=spec (repeatable).
//
// Spec grammar (one mode per failpoint):
//   error        fire std::runtime_error-derived FailpointError at the site
//   torn:<N>     write sites persist exactly N bytes, then fail
//   eintr:<N>    the next N syscall attempts at the site see EINTR
//   delay:<MS>   sleep MS milliseconds, then proceed normally
//   crash        _exit(kFailpointCrashExit) at the site
//   crash:<N>    write sites persist N bytes, then _exit — a kill -9 landing
//                mid-write, reproducibly
//   off          disarm
//
// Sites consult the registry through `failpoint(name)`: Error throws and
// Delay sleeps right there; Crash with no byte budget exits right there;
// TornWrite, Eintr, and budgeted Crash return the action because only the
// call site knows how to tear its own write or fake its own EINTR.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace syccl::util {

/// What an armed failpoint site throws in `error` mode.
class FailpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exit code of `crash`-mode failpoints (and nothing else), so tests can
/// assert the simulated crash — not some real bug — killed the child.
inline constexpr int kFailpointCrashExit = 42;

enum class FailpointMode { Error, TornWrite, Eintr, Delay, Crash };

struct FailpointAction {
  FailpointMode mode = FailpointMode::Error;
  /// TornWrite / budgeted Crash: bytes to persist before the fault fires.
  std::uint64_t bytes = 0;
  /// Delay: milliseconds to sleep.
  int delay_ms = 0;
};

class Failpoints {
 public:
  /// The process-wide registry. First call parses $SYCCL_FAILPOINTS.
  static Failpoints& instance();

  /// Arms `name` with `spec` (grammar above; "off" disarms). Throws
  /// std::invalid_argument on an unparseable spec.
  void enable(const std::string& name, const std::string& spec);
  void disable(const std::string& name);
  /// Disarms everything (test teardown).
  void clear();
  /// Parses "name=spec;name=spec" lists ($SYCCL_FAILPOINTS / --failpoint).
  void enable_list(const std::string& list);

  /// Times `name` actually fired (armed evaluations; 0 if never/unknown).
  std::uint64_t hits(const std::string& name) const;
  std::vector<std::string> enabled() const;
  bool any_enabled() const { return armed_.load(std::memory_order_relaxed) > 0; }

  /// Site-side gate; prefer the free function `failpoint(name)`.
  /// Returns the action when `name` is armed (after counting the hit and
  /// decrementing an Eintr budget), nullopt otherwise.
  std::optional<FailpointAction> evaluate(const char* name);

 private:
  Failpoints();

  struct State;
  State* state_;  ///< leaked: sites may fire during static destruction
  std::atomic<int> armed_{0};
};

/// Evaluates failpoint `name` and applies what can be applied centrally:
/// Error throws FailpointError, Delay sleeps, bare Crash _exit()s. Returns
/// the action for TornWrite / Eintr / budgeted Crash (the site applies it),
/// nullopt when disarmed. One relaxed load when nothing is armed.
std::optional<FailpointAction> failpoint(const char* name);

/// _exit(kFailpointCrashExit) — the terminal half of a budgeted crash.
[[noreturn]] void failpoint_crash();

}  // namespace syccl::util
