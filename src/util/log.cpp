#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace syccl::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%10.3f] [%s] %s\n", secs, level_name(level), message.c_str());
}

}  // namespace syccl::util
