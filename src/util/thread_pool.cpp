#include "util/thread_pool.h"

#include <atomic>
#include <string>

#include "obs/trace.h"

namespace syccl::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      obs::set_thread_name("syccl-worker-" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::post(std::function<void()> task) {
  // A pool with no workers (constructed before ~ThreadPool only) cannot
  // happen — the constructor always spawns at least one thread — so a posted
  // task is always eventually run.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Single-item batches run inline: avoids queue latency and makes the pool
  // usable re-entrantly from within a task.
  if (count == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Chunked dispatch: instead of one queued std::function per index, enqueue
  // at most one helper task per worker; helpers (and the caller) claim
  // indices from a shared atomic counter. This kills the per-item allocation
  // and wake-up cost and load-balances automatically. The batch state is
  // heap-shared because a helper stub may be popped after the batch already
  // completed (it then sees next ≥ count and exits immediately).
  struct Batch {
    std::function<void(std::size_t)> fn;  ///< one copy per batch
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
    std::mutex error_mutex;

    void run() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (done.fetch_add(1) + 1 == count) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_all();
        }
      }
    }
  };
  auto batch = std::make_shared<Batch>();
  batch->fn = fn;
  batch->count = count;

  const std::size_t helpers = std::min(workers_.size(), count - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t w = 0; w < helpers; ++w) {
      queue_.push([batch] { batch->run(); });
    }
  }
  cv_.notify_all();

  // The caller claims indices too, so every batch can complete on its
  // caller alone — this keeps nested parallel_for calls deadlock-free even
  // when all workers are busy inside outer batches.
  batch->run();

  std::unique_lock<std::mutex> lock(batch->done_mutex);
  batch->done_cv.wait(lock, [&batch] { return batch->done.load() == batch->count; });
  lock.unlock();

  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

}  // namespace syccl::util
