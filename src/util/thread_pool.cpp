#include "util/thread_pool.h"

#include <atomic>

namespace syccl::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Single-item batches run inline: avoids queue latency and makes the pool
  // usable re-entrantly from within a task.
  if (count == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr first_error;
    std::mutex error_mutex;
  };
  Batch batch;
  batch.remaining.store(count);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < count; ++i) {
      queue_.push([&batch, &fn, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(batch.error_mutex);
          if (!batch.first_error) batch.first_error = std::current_exception();
        }
        if (batch.remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(batch.done_mutex);
          batch.done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // The caller participates in draining the queue instead of sleeping: this
  // makes nested parallel_for calls deadlock-free.
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (batch.remaining.load() == 0) break;
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      }
    }
    if (task) {
      task();
    } else {
      std::unique_lock<std::mutex> lock(batch.done_mutex);
      batch.done_cv.wait_for(lock, std::chrono::milliseconds(1),
                             [&batch] { return batch.remaining.load() == 0; });
    }
  }

  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

}  // namespace syccl::util
