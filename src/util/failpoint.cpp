#include "util/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace syccl::util {

namespace {

/// Armed state of one failpoint. `eintr_left` decays per evaluation so a
/// storm ends and the retry loop under test is seen to make progress.
struct Arm {
  FailpointAction action;
  std::uint64_t eintr_left = 0;
};

std::optional<std::uint64_t> parse_number(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

struct Failpoints::State {
  mutable std::mutex mutex;
  std::map<std::string, Arm> armed;
  std::map<std::string, std::uint64_t> hit_counts;
};

Failpoints::Failpoints() : state_(new State) {
  if (const char* env = std::getenv("SYCCL_FAILPOINTS")) {
    enable_list(env);
  }
}

Failpoints& Failpoints::instance() {
  static Failpoints* registry = new Failpoints;  // leaked, like State
  return *registry;
}

void Failpoints::enable(const std::string& name, const std::string& spec) {
  if (name.empty()) throw std::invalid_argument("empty failpoint name");
  if (spec == "off") {
    disable(name);
    return;
  }

  Arm arm;
  const std::size_t colon = spec.find(':');
  const std::string mode = spec.substr(0, colon);
  std::optional<std::uint64_t> arg;
  if (colon != std::string::npos) {
    arg = parse_number(spec.substr(colon + 1));
    if (!arg) throw std::invalid_argument("bad failpoint argument in spec '" + spec + "'");
  }

  if (mode == "error") {
    if (arg) throw std::invalid_argument("error takes no argument");
    arm.action.mode = FailpointMode::Error;
  } else if (mode == "torn") {
    if (!arg) throw std::invalid_argument("torn needs a byte count: torn:<N>");
    arm.action.mode = FailpointMode::TornWrite;
    arm.action.bytes = *arg;
  } else if (mode == "eintr") {
    if (!arg) throw std::invalid_argument("eintr needs a count: eintr:<N>");
    arm.action.mode = FailpointMode::Eintr;
    arm.eintr_left = *arg;
  } else if (mode == "delay") {
    if (!arg || *arg > 600000) throw std::invalid_argument("delay needs delay:<MS> <= 600000");
    arm.action.mode = FailpointMode::Delay;
    arm.action.delay_ms = static_cast<int>(*arg);
  } else if (mode == "crash") {
    arm.action.mode = FailpointMode::Crash;
    arm.action.bytes = arg.value_or(0);
  } else {
    throw std::invalid_argument("unknown failpoint mode '" + mode + "'");
  }

  std::lock_guard<std::mutex> lock(state_->mutex);
  const bool fresh = state_->armed.find(name) == state_->armed.end();
  state_->armed[name] = arm;
  if (fresh) armed_.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->armed.erase(name) > 0) armed_.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoints::clear() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  armed_.fetch_sub(static_cast<int>(state_->armed.size()), std::memory_order_relaxed);
  state_->armed.clear();
}

void Failpoints::enable_list(const std::string& list) {
  std::size_t start = 0;
  while (start < list.size()) {
    std::size_t end = list.find(';', start);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint list item '" + item + "' is not name=spec");
    }
    enable(item.substr(0, eq), item.substr(eq + 1));
  }
}

std::uint64_t Failpoints::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  const auto it = state_->hit_counts.find(name);
  return it == state_->hit_counts.end() ? 0 : it->second;
}

std::vector<std::string> Failpoints::enabled() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::vector<std::string> names;
  names.reserve(state_->armed.size());
  for (const auto& [name, arm] : state_->armed) names.push_back(name);
  return names;
}

std::optional<FailpointAction> Failpoints::evaluate(const char* name) {
  if (!any_enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(state_->mutex);
  const auto it = state_->armed.find(name);
  if (it == state_->armed.end()) return std::nullopt;
  if (it->second.action.mode == FailpointMode::Eintr) {
    if (it->second.eintr_left == 0) {
      // Storm exhausted: disarm so the site stops paying for the lookup
      // (and hits() reflects only attempts that actually saw EINTR).
      state_->armed.erase(it);
      armed_.fetch_sub(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    --it->second.eintr_left;
  }
  ++state_->hit_counts[name];
  return it->second.action;
}

std::optional<FailpointAction> failpoint(const char* name) {
  auto action = Failpoints::instance().evaluate(name);
  if (!action) return std::nullopt;
  switch (action->mode) {
    case FailpointMode::Error:
      throw FailpointError(std::string("failpoint '") + name + "' fired");
    case FailpointMode::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(action->delay_ms));
      return std::nullopt;  // delayed, then proceed normally
    case FailpointMode::Crash:
      if (action->bytes == 0) failpoint_crash();
      return action;
    case FailpointMode::TornWrite:
    case FailpointMode::Eintr:
      return action;
  }
  return std::nullopt;
}

void failpoint_crash() {
  // _exit, not abort: no unwinding, no atexit, no buffers flushed — the
  // closest user-space approximation of a kill -9 landing at this line.
  ::_exit(kFailpointCrashExit);
}

}  // namespace syccl::util
