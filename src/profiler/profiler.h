// Network profiler (paper §6): measures the α/β parameters of each link
// class by timing transfers of varying sizes and fitting the Hockney model,
// exactly like TECCL's and TACCL's profilers — except the "measurements"
// come from the simulator instead of a real fabric (see DESIGN.md
// substitutions).
#pragma once

#include <vector>

#include "topo/groups.h"
#include "topo/topology.h"

namespace syccl::profiler {

struct LinkProfile {
  int dim = -1;
  double alpha = 0.0;  ///< fitted latency, seconds
  double beta = 0.0;   ///< fitted reciprocal bandwidth, s/byte
  /// Coefficient of determination of the least-squares fit.
  double r_squared = 0.0;
  int samples = 0;
};

struct ProfilerOptions {
  /// Probe sizes in bytes (defaults to a 1 KB … 64 MB geometric sweep).
  std::vector<double> probe_sizes;
  /// Repetitions per size (timings are deterministic here, but a real
  /// profiler averages; kept for interface fidelity).
  int repeats = 3;
};

/// Measures one ping of `bytes` between two members of `group` and returns
/// the transfer time (simulated; a real deployment would issue a SendRecv).
double measure_ping(const topo::TopologyGroups& groups, int dim, int group, double bytes);

/// Profiles every dimension of the topology: picks a representative GPU pair
/// per dimension, sweeps probe sizes, and least-squares fits t = α + β·s.
std::vector<LinkProfile> profile_topology(const topo::Topology& topo,
                                          const ProfilerOptions& options = {});

/// Least-squares fit of t = α + β·s; exposed for testing. Returns
/// (alpha, beta, r²). Throws std::invalid_argument on fewer than 2 samples.
LinkProfile fit_alpha_beta(const std::vector<double>& sizes, const std::vector<double>& times);

}  // namespace syccl::profiler
