#include "profiler/profiler.h"

#include <cmath>
#include <stdexcept>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "sim/simulator.h"

namespace syccl::profiler {

double measure_ping(const topo::TopologyGroups& groups, int dim, int group, double bytes) {
  const topo::GroupTopology& gt = groups.group(dim, group);
  if (gt.size() < 2) throw std::invalid_argument("group too small to ping");
  const sim::Simulator sim(groups, sim::SimOptions{bytes + 1, 1});  // no pipelining

  sim::Schedule s;
  const int piece = s.add_piece(sim::Piece{0, bytes, gt.ranks[0], false, {}});
  s.add_op(piece, gt.ranks[0], gt.ranks[1], dim);
  return sim.run(s).makespan;
}

LinkProfile fit_alpha_beta(const std::vector<double>& sizes, const std::vector<double>& times) {
  if (sizes.size() != times.size() || sizes.size() < 2) {
    throw std::invalid_argument("fit needs at least two (size, time) samples");
  }
  const double n = static_cast<double>(sizes.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sx += sizes[i];
    sy += times[i];
    sxx += sizes[i] * sizes[i];
    sxy += sizes[i] * times[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-30) throw std::invalid_argument("degenerate size samples");
  LinkProfile out;
  out.beta = (n * sxy - sx * sy) / denom;
  out.alpha = (sy - out.beta * sx) / n;
  out.samples = static_cast<int>(sizes.size());

  // R²
  const double mean_t = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double pred = out.alpha + out.beta * sizes[i];
    ss_res += (times[i] - pred) * (times[i] - pred);
    ss_tot += (times[i] - mean_t) * (times[i] - mean_t);
  }
  out.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return out;
}

std::vector<LinkProfile> profile_topology(const topo::Topology& topo,
                                          const ProfilerOptions& options) {
  const topo::TopologyGroups groups = topo::extract_groups(topo);
  std::vector<double> sizes = options.probe_sizes;
  if (sizes.empty()) {
    for (double s = 1024.0; s <= 64.0 * 1024 * 1024; s *= 4) sizes.push_back(s);
  }

  std::vector<LinkProfile> out;
  for (int d = 0; d < groups.num_dims(); ++d) {
    // Representative pair: the first group with >= 2 members.
    int gi = -1;
    for (std::size_t g = 0; g < groups.dims[static_cast<std::size_t>(d)].groups.size(); ++g) {
      if (groups.dims[static_cast<std::size_t>(d)].groups[g].size() >= 2) {
        gi = static_cast<int>(g);
        break;
      }
    }
    if (gi < 0) continue;
    std::vector<double> times;
    for (double s : sizes) {
      double total = 0.0;
      for (int rep = 0; rep < std::max(1, options.repeats); ++rep) {
        total += measure_ping(groups, d, gi, s);
      }
      times.push_back(total / std::max(1, options.repeats));
    }
    LinkProfile p = fit_alpha_beta(sizes, times);
    p.dim = d;
    out.push_back(p);
  }
  return out;
}

}  // namespace syccl::profiler
