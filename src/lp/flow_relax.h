// Multi-commodity flow relaxation of the epoch-MILP (ROADMAP item 3).
//
// The epoch encoding's LP relaxation bounds the branch and bound weakly on
// congested instances: fractional `has` variables let a piece "leak" to every
// destination at once, so the LP believes in finish times no port schedule
// can realise. Following the multi-commodity-flow view of collective
// scheduling ("Rethinking ML Collective Communication as a Multi-Commodity
// Flow Problem", PAPERS.md), this module projects the time-expanded MILP
// onto a *static* flow network — one node per group member, one arc per
// (piece, sender, receiver) family of x variables — and bounds the finish
// epoch by how fast the required deliveries can cross the port capacities,
// ignoring *when* individual sends happen.
//
// Per arc the LP carries two variables: s_a = total sends on the arc
// (bounded by the branch node's x-variable box, so branching tightens the
// relaxation) and u_a ∈ [0,1] = "useful" flow, the sub-flow that actually
// delivers pieces (u_a ≤ s_a). Rows:
//   * indegree:  Σ_in u ≥ 1 per required (piece, destination) commodity;
//   * gating:    u_a ≤ Σ u into the sender, for senders that are not
//                sources (a relay must receive before it forwards);
//   * port:      (O/C)·Σ_port u − z ≤ O − L per (port, direction): useful
//                sends all start by epoch z − L and a port starts at most C
//                sends per O epochs;
//   * horizon:   (O/C)·Σ_port s ≤ T − L + O: *all* sends, useful or not,
//                must fit before the horizon (catches over-forced boxes);
// minimising z, the completion epoch. The constraint matrix and rhs never
// change across branch nodes — only variable bounds do — so one
// lp::SimplexSolver instance re-solves the relaxation warm along the whole
// branch tree, exactly like the node LPs themselves (PR 2).
//
// The MILP-objective bound returned is send_cost·F_min − Σ_t [t ≥ Z and
// done_t free], where F_min counts unavoidable sends (per piece: required
// deliveries vs. branching-forced sends, whichever is larger) and
// Z = ⌈z*⌉ is the flow completion bound; epochs whose done variable is
// fixed to 0 by branching drop out of the sum on their own. A per-call BFS
// over the arcs still open in the box supplies reachability (disconnected
// required destination ⇒ the box is integer-infeasible, never a finite
// bound) and a hop-depth floor z ≥ L·depth.
#pragma once

#include <memory>
#include <vector>

#include "lp/simplex_solver.h"
#include "milp/branch_and_bound.h"
#include "solver/epoch_model.h"

namespace syccl::lp {

/// Projection of the epoch-MILP variable layout onto flow structure, built
/// by the encoder (solver/milp_scheduler.cpp) while it emits variables.
/// Indices in `x_vars` / `done_vars` are MILP variable ids, i.e. positions
/// in the bound vectors branch and bound hands to DualBoundProvider.
struct FlowVarMap {
  struct Arc {
    int piece = -1;
    int from = -1;  ///< group-local sender
    int to = -1;    ///< group-local receiver
    std::vector<int> x_vars;  ///< x[piece][from][to][t] for every encoded t
  };
  std::vector<Arc> arcs;
  std::vector<int> done_vars;  ///< done[t-1] for t = 1..horizon
};

class FlowRelaxation final : public milp::DualBoundProvider {
 public:
  /// `map` is copied; `demand` (and its group) are only read during
  /// construction. `send_cost` is the ε objective weight the encoder puts on
  /// every x variable (solver::kMilpSendCost).
  FlowRelaxation(const solver::SubDemand& demand, const solver::EpochParams& ep, int horizon,
                 const FlowVarMap& map, double send_cost);

  Result root_bound(const std::vector<double>& lower,
                    const std::vector<double>& upper) override;
  Result node_bound(const std::vector<double>& lower,
                    const std::vector<double>& upper) override;

  /// Required (piece, destination) deliveries — pieces whose destinations
  /// all hold the piece already contribute none (commodity elision).
  int num_commodities() const { return num_commodities_; }
  /// Arcs carried by the flow LP (arcs of commodity-free pieces are elided).
  int num_arcs() const { return num_lp_arcs_; }

 private:
  struct ArcInfo {
    int piece = -1;
    int from = -1;
    int to = -1;
    std::vector<int> x_vars;
    int lp_col = -1;  ///< s-column in the LP, -1 if elided
  };
  struct PieceInfo {
    std::vector<char> is_src;       ///< per group-local member
    std::vector<int> required;      ///< destinations that are not sources
    std::vector<int> arc_ids;       ///< indices into arcs_
    std::vector<std::vector<int>> in_arcs;   ///< per member: inbound arc ids
    std::vector<std::vector<int>> out_arcs;  ///< per member: outbound arc ids
  };

  Result bound_impl(const std::vector<double>& lower, const std::vector<double>& upper,
                    const char* span_name);

  solver::EpochParams ep_;
  int horizon_ = 0;
  double send_cost_ = 0.0;
  int group_size_ = 0;
  std::vector<int> done_vars_;
  std::vector<ArcInfo> arcs_;
  std::vector<PieceInfo> pieces_;
  int num_commodities_ = 0;
  int num_lp_arcs_ = 0;
  int z_col_ = -1;
  /// A required destination with no inbound arcs in the encoding can never
  /// be served — every box is integer-infeasible.
  bool static_infeasible_ = false;

  std::unique_ptr<SimplexSolver> solver_;
  Basis last_basis_;
  // Per-call scratch (one thread per MILP solve).
  std::vector<double> lo_, hi_;
  std::vector<long> arc_lo_, arc_hi_;
  std::vector<int> depth_, bfs_queue_;
};

}  // namespace syccl::lp
