// Reusable LP solve context with warm-started re-solves.
//
// Branch and bound re-solves the same constraint matrix hundreds of times
// under changing variable bounds. lp::solve() pays the full two-phase primal
// cost every time; SimplexSolver is constructed once from the constraint
// matrix and re-enters from the previous optimal basis instead. Bound
// changes leave reduced costs — and therefore dual feasibility — intact, so
// a dual-simplex phase restores primal feasibility in a handful of pivots.
//
// Formulation: every row is turned into an equality with one slack column
// (≤: s ∈ [0,∞); ≥: s ∈ (−∞,0]; =: s ∈ [0,0]) and variable bounds are kept
// implicit (bounded-variable simplex, no bound rows and no x−l shift). The
// dense tableau B⁻¹[A|I] therefore never changes shape across re-solves; a
// resolve only recomputes the basic values from the new bounds.
//
// Cold starts use a dual-feasible "crash" basis (all slacks basic, each
// structural column at the bound its cost sign prefers). When no such basis
// exists (negative cost with an infinite upper bound), when numerical drift
// is detected, or when the result fails a residual check, the solver falls
// back to the exact two-phase primal path in lp::solve() and rebuilds its
// state on the next call.
#pragma once

#include <vector>

#include "lp/simplex.h"

namespace syccl::lp {

/// Snapshot of a simplex basis: which column is basic in each row plus the
/// at-lower/at-upper/basic status of every column. Cheap to copy and share
/// between sibling branch-and-bound nodes.
struct Basis {
  std::vector<int> basic;            ///< per row: basic column index
  std::vector<signed char> status;   ///< per column: ColumnStatus value

  bool operator==(const Basis&) const = default;
};

class SimplexSolver {
 public:
  enum ColumnStatus : signed char { kAtLower = 0, kAtUpper = 1, kBasic = 2 };

  struct Stats {
    long lp_iterations = 0;   ///< dual pivots + fallback primal pivots
    long warm_hits = 0;       ///< resolves completed by dual-simplex re-entry
    long warm_exact = 0;      ///< warm hits that started from the hinted basis
    long warm_fallbacks = 0;  ///< resolves served by the cold two-phase path
    long crashes = 0;         ///< dual-feasible crash bases built
    long refactors = 0;       ///< tableau rebuilds from the current basis
  };

  /// Fixes the constraint matrix and objective. Bounds held by `base` are
  /// ignored — each resolve() supplies its own. Throws std::invalid_argument
  /// if a constraint references an unknown variable. `stall_limit` is the
  /// number of consecutive dual-degenerate pivots tolerated before entering
  /// and leaving selection degrade to Bland's rule (anti-cycling); tests set
  /// it to 0 to force the Bland path.
  explicit SimplexSolver(const Problem& base, long stall_limit = 2000);

  /// Solves min cᵀx s.t. the fixed constraints and l ≤ x ≤ u. Warm-starts
  /// from the internal basis when one is available (any basis left by a
  /// previous resolve is dual feasible for the new bounds, because bounds do
  /// not enter the reduced costs), else crashes a fresh dual-feasible basis;
  /// falls back to lp::solve() when neither is possible. `hint` (optional)
  /// is a basis snapshot — when it matches the internal state the re-entry
  /// is exact and counted in Stats::warm_exact. `max_iters` and `deadline_s`
  /// bound the pivot count / wall-clock of this resolve.
  Solution resolve(const std::vector<double>& lower, const std::vector<double>& upper,
                   long max_iters = 200000, double deadline_s = 0.0,
                   const Basis* hint = nullptr);

  /// Snapshot of the current basis (empty if no solve has populated one).
  Basis basis() const;

  const Stats& stats() const { return stats_; }
  int num_rows() const { return m_; }
  int num_cols() const { return total_; }

 private:
  double& tab(int r, int c) { return tab_[static_cast<std::size_t>(r) * total_ + c]; }
  double tab(int r, int c) const { return tab_[static_cast<std::size_t>(r) * total_ + c]; }
  double col_lo(int c) const;
  double col_hi(int c) const;
  /// Active-bound value of a nonbasic column under the current bounds.
  double nonbasic_value(int c) const;

  /// Rebuilds tableau/basis as the dual-feasible crash basis; false if the
  /// bound/cost pattern admits none.
  bool crash();
  /// Rebuilds the tableau, B⁻¹b and reduced costs from scratch for the
  /// current basis (Gauss-Jordan on [A|I]), wiping accumulated pivot error;
  /// false if the basis has gone numerically singular.
  bool refactor();
  /// β = B⁻¹b − Σ_{j nonbasic} (B⁻¹A)_j · (active bound of j).
  void recompute_beta();
  /// Exact cold solve through lp::solve(); invalidates the warm state.
  Solution fallback(const std::vector<double>& lower, const std::vector<double>& upper,
                    long max_iters, double deadline_s);
  void pivot(int pr, int pc);
  /// Verifies the assembled solution against the original rows and bounds.
  bool verify(const Solution& sol) const;

  Problem base_;  ///< constraints + objective (bounds unused)
  int n_ = 0;     ///< structural columns
  int m_ = 0;     ///< rows
  int total_ = 0; ///< n_ + m_ (structurals + slacks)

  std::vector<double> tab_;   ///< dense m_ × total_ tableau B⁻¹[A|I]
  std::vector<double> rhs0_;  ///< B⁻¹b (b never changes across resolves)
  std::vector<double> d_;     ///< reduced costs, maintained across pivots
  std::vector<int> basic_;    ///< per row: basic column
  std::vector<signed char> stat_;  ///< per column: ColumnStatus
  std::vector<double> beta_;  ///< per row: basic value (recomputed per resolve)
  std::vector<double> lo_, hi_;    ///< current column bounds (structurals + slacks)
  long stall_limit_ = 2000;   ///< degenerate pivots before the Bland fallback
  long pivots_since_factor_ = 0;  ///< update count since the last clean factorization
  bool valid_ = false;        ///< tableau/basis state usable for warm re-entry
  Stats stats_;
};

}  // namespace syccl::lp
