#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stopwatch.h"

namespace syccl::lp {

namespace {

constexpr double kEps = 1e-9;

/// Dense tableau simplex in standard form: minimize cᵀx, Ax = b, x ≥ 0,
/// b ≥ 0, starting from a basis of artificials/slacks.
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols), a_(static_cast<std::size_t>(rows) * cols, 0.0), b_(rows, 0.0), basis_(rows, -1) {}

  double& at(int r, int c) { return a_[static_cast<std::size_t>(r) * cols_ + c]; }
  double at(int r, int c) const { return a_[static_cast<std::size_t>(r) * cols_ + c]; }
  double& rhs(int r) { return b_[static_cast<std::size_t>(r)]; }
  double rhs(int r) const { return b_[static_cast<std::size_t>(r)]; }
  int& basis(int r) { return basis_[static_cast<std::size_t>(r)]; }
  int basis(int r) const { return basis_[static_cast<std::size_t>(r)]; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void pivot(int pr, int pc) {
    const double pv = at(pr, pc);
    for (int c = 0; c < cols_; ++c) at(pr, c) /= pv;
    rhs(pr) /= pv;
    at(pr, pc) = 1.0;
    for (int r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (std::fabs(f) < kEps) continue;
      for (int c = 0; c < cols_; ++c) at(r, c) -= f * at(pr, c);
      rhs(r) -= f * rhs(pr);
      at(r, pc) = 0.0;
    }
    basis(pr) = pc;
  }

 private:
  int rows_, cols_;
  std::vector<double> a_;
  std::vector<double> b_;
  std::vector<int> basis_;
};

/// Runs the simplex on `t` minimizing the reduced-cost row `z` (length cols,
/// plus scalar value). Only columns with allowed[c] == true may enter.
/// Returns Optimal / Unbounded / IterationLimit.
Status run_simplex(Tableau& t, std::vector<double>& z, double& zval,
                   const std::vector<bool>& allowed, long& iters_left,
                   const util::Stopwatch& clock, double deadline_s) {
  const int rows = t.rows();
  const int cols = t.cols();
  long stall = 0;
  long since_check = 0;
  while (iters_left-- > 0) {
    if (deadline_s > 0 && ++since_check >= 16) {
      since_check = 0;
      if (clock.elapsed_seconds() > deadline_s) return Status::IterationLimit;
    }
    // Entering column: Dantzig rule, Bland's rule when stalling.
    int pc = -1;
    if (stall < 2000) {
      double best = -kEps;
      for (int c = 0; c < cols; ++c) {
        if (!allowed[static_cast<std::size_t>(c)]) continue;
        if (z[static_cast<std::size_t>(c)] < best) {
          best = z[static_cast<std::size_t>(c)];
          pc = c;
        }
      }
    } else {
      for (int c = 0; c < cols; ++c) {
        if (allowed[static_cast<std::size_t>(c)] && z[static_cast<std::size_t>(c)] < -kEps) {
          pc = c;
          break;
        }
      }
    }
    if (pc < 0) return Status::Optimal;

    // Ratio test (Bland tie-break on basis index for anti-cycling).
    int pr = -1;
    double best_ratio = kInf;
    for (int r = 0; r < rows; ++r) {
      const double a = t.at(r, pc);
      if (a > kEps) {
        const double ratio = t.rhs(r) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && (pr < 0 || t.basis(r) < t.basis(pr)))) {
          best_ratio = ratio;
          pr = r;
        }
      }
    }
    if (pr < 0) return Status::Unbounded;
    if (best_ratio < kEps) {
      ++stall;
    } else {
      stall = 0;
    }

    // Pivot and update the objective row.
    t.pivot(pr, pc);
    const double f = z[static_cast<std::size_t>(pc)];
    if (std::fabs(f) > 0) {
      for (int c = 0; c < cols; ++c) z[static_cast<std::size_t>(c)] -= f * t.at(pr, c);
      zval -= f * t.rhs(pr);
      z[static_cast<std::size_t>(pc)] = 0.0;
    }
  }
  return Status::IterationLimit;
}

}  // namespace

int Problem::add_var(double lo, double hi, double cost) {
  const int id = num_vars++;
  objective.resize(static_cast<std::size_t>(num_vars), 0.0);
  lower.resize(static_cast<std::size_t>(num_vars), 0.0);
  upper.resize(static_cast<std::size_t>(num_vars), kInf);
  objective[static_cast<std::size_t>(id)] = cost;
  lower[static_cast<std::size_t>(id)] = lo;
  upper[static_cast<std::size_t>(id)] = hi;
  return id;
}

Solution solve(const Problem& problem, long max_iters, double deadline_s) {
  util::Stopwatch clock;
  const long initial_iters = max_iters;
  const int n = problem.num_vars;
  std::vector<double> lower = problem.lower;
  std::vector<double> upper = problem.upper;
  std::vector<double> cost = problem.objective;
  lower.resize(static_cast<std::size_t>(n), 0.0);
  upper.resize(static_cast<std::size_t>(n), kInf);
  cost.resize(static_cast<std::size_t>(n), 0.0);

  for (int v = 0; v < n; ++v) {
    if (lower[static_cast<std::size_t>(v)] > upper[static_cast<std::size_t>(v)] + kEps) {
      return Solution{Status::Infeasible, 0.0, {}};
    }
  }

  // Shift x = l + x'. Collect all rows: user constraints plus finite upper
  // bounds (x' ≤ u − l).
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(problem.constraints.size());
  double shift_cost = 0.0;
  for (int v = 0; v < n; ++v) {
    shift_cost += cost[static_cast<std::size_t>(v)] * lower[static_cast<std::size_t>(v)];
    if (upper[static_cast<std::size_t>(v)] < kInf) {
      rows.push_back(Row{{{v, 1.0}},
                         Relation::LessEq,
                         upper[static_cast<std::size_t>(v)] - lower[static_cast<std::size_t>(v)]});
    }
  }
  for (const Constraint& c : problem.constraints) {
    Row row{c.terms, c.rel, c.rhs};
    for (auto& [v, coef] : row.terms) {
      if (v < 0 || v >= n) throw std::invalid_argument("constraint references unknown variable");
      row.rhs -= coef * lower[static_cast<std::size_t>(v)];
    }
    rows.push_back(std::move(row));
  }

  const int m = static_cast<int>(rows.size());
  // Column layout: [x' (n)] [slack/surplus (≤/≥ rows)] [artificials].
  int num_slack = 0;
  for (const Row& r : rows) {
    if (r.rel != Relation::Eq) ++num_slack;
  }
  // Artificials: for ≥ rows and = rows always; for ≤ rows only when rhs < 0
  // after normalisation (we normalise rhs ≥ 0 by flipping, so a flipped ≤
  // becomes ≥ and needs one anyway). Simplest: normalise first.
  std::vector<Row> norm = rows;
  for (Row& r : norm) {
    if (r.rhs < 0) {
      r.rhs = -r.rhs;
      for (auto& [v, coef] : r.terms) coef = -coef;
      if (r.rel == Relation::LessEq) {
        r.rel = Relation::GreaterEq;
      } else if (r.rel == Relation::GreaterEq) {
        r.rel = Relation::LessEq;
      }
    }
  }
  num_slack = 0;
  int num_art = 0;
  for (const Row& r : norm) {
    if (r.rel != Relation::Eq) ++num_slack;
    if (r.rel != Relation::LessEq) ++num_art;
  }

  const int cols = n + num_slack + num_art;
  Tableau t(m, cols);
  int slack_cursor = n;
  int art_cursor = n + num_slack;
  std::vector<int> art_cols;
  for (int r = 0; r < m; ++r) {
    const Row& row = norm[static_cast<std::size_t>(r)];
    for (const auto& [v, coef] : row.terms) t.at(r, v) += coef;
    t.rhs(r) = row.rhs;
    if (row.rel == Relation::LessEq) {
      t.at(r, slack_cursor) = 1.0;
      t.basis(r) = slack_cursor++;
    } else if (row.rel == Relation::GreaterEq) {
      t.at(r, slack_cursor++) = -1.0;
      t.at(r, art_cursor) = 1.0;
      t.basis(r) = art_cursor;
      art_cols.push_back(art_cursor++);
    } else {
      t.at(r, art_cursor) = 1.0;
      t.basis(r) = art_cursor;
      art_cols.push_back(art_cursor++);
    }
  }

  long iters_left = max_iters;
  std::vector<bool> allowed(static_cast<std::size_t>(cols), true);

  // Phase 1: minimize Σ artificials.
  if (num_art > 0) {
    std::vector<double> z(static_cast<std::size_t>(cols), 0.0);
    double zval = 0.0;
    for (int c : art_cols) z[static_cast<std::size_t>(c)] = 1.0;
    // Price out the artificial basis.
    for (int r = 0; r < m; ++r) {
      const int b = t.basis(r);
      if (z[static_cast<std::size_t>(b)] != 0.0) {
        const double f = z[static_cast<std::size_t>(b)];
        for (int c = 0; c < cols; ++c) z[static_cast<std::size_t>(c)] -= f * t.at(r, c);
        zval -= f * t.rhs(r);
      }
    }
    const Status s1 = run_simplex(t, z, zval, allowed, iters_left, clock, deadline_s);
    if (s1 == Status::IterationLimit) {
      return Solution{Status::IterationLimit, 0.0, {}, initial_iters - iters_left};
    }
    if (-zval > 1e-6) return Solution{Status::Infeasible, 0.0, {}, initial_iters - iters_left};
    // Drive remaining artificials out of the basis where possible; then ban
    // artificial columns from re-entering.
    for (int r = 0; r < m; ++r) {
      const int b = t.basis(r);
      if (b >= n + num_slack) {
        for (int c = 0; c < n + num_slack; ++c) {
          if (std::fabs(t.at(r, c)) > 1e-7) {
            t.pivot(r, c);
            break;
          }
        }
      }
    }
    for (int c : art_cols) allowed[static_cast<std::size_t>(c)] = false;
  }

  // Phase 2: original objective.
  std::vector<double> z(static_cast<std::size_t>(cols), 0.0);
  double zval = 0.0;
  for (int v = 0; v < n; ++v) z[static_cast<std::size_t>(v)] = cost[static_cast<std::size_t>(v)];
  for (int r = 0; r < m; ++r) {
    const int b = t.basis(r);
    if (b < cols && z[static_cast<std::size_t>(b)] != 0.0) {
      const double f = z[static_cast<std::size_t>(b)];
      for (int c = 0; c < cols; ++c) z[static_cast<std::size_t>(c)] -= f * t.at(r, c);
      zval -= f * t.rhs(r);
    }
  }
  const Status s2 = run_simplex(t, z, zval, allowed, iters_left, clock, deadline_s);
  if (s2 == Status::Unbounded) return Solution{Status::Unbounded, 0.0, {}, initial_iters - iters_left};
  if (s2 == Status::IterationLimit) {
    return Solution{Status::IterationLimit, 0.0, {}, initial_iters - iters_left};
  }

  Solution sol;
  sol.status = Status::Optimal;
  sol.iterations = initial_iters - iters_left;
  sol.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = t.basis(r);
    if (b >= 0 && b < n) sol.x[static_cast<std::size_t>(b)] = t.rhs(r);
  }
  for (int v = 0; v < n; ++v) sol.x[static_cast<std::size_t>(v)] += lower[static_cast<std::size_t>(v)];
  sol.objective = 0.0;
  for (int v = 0; v < n; ++v) {
    sol.objective += cost[static_cast<std::size_t>(v)] * sol.x[static_cast<std::size_t>(v)];
  }
  (void)shift_cost;
  return sol;
}

}  // namespace syccl::lp
