// Dense two-phase primal simplex LP solver.
//
// This is the LP substrate under the MILP branch-and-bound (src/milp) that
// replaces the commercial solver used by the paper. Sub-demand models are
// small by construction (SyCCL's whole point, §5.1), so a dense tableau is
// adequate; we favour simplicity and numerical robustness (Bland's rule
// fallback) over speed.
//
// Problem form:  minimize cᵀx  subject to per-row relations and variable
// bounds l ≤ x ≤ u (u may be +inf). Internally variables are shifted to
// x' = x − l ≥ 0 and finite upper bounds become explicit rows.
#pragma once

#include <limits>
#include <utility>
#include <vector>

namespace syccl::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Relation { LessEq, Eq, GreaterEq };

struct Constraint {
  std::vector<std::pair<int, double>> terms;  ///< (variable, coefficient)
  Relation rel = Relation::LessEq;
  double rhs = 0.0;
};

struct Problem {
  int num_vars = 0;
  std::vector<double> objective;  ///< minimize objectiveᵀ x
  std::vector<double> lower;      ///< defaults to 0 if empty
  std::vector<double> upper;      ///< defaults to +inf if empty
  std::vector<Constraint> constraints;

  int add_var(double lo = 0.0, double hi = kInf, double cost = 0.0);
  void add_constraint(Constraint c) { constraints.push_back(std::move(c)); }
};

enum class Status { Optimal, Infeasible, Unbounded, IterationLimit };

struct Solution {
  Status status = Status::Infeasible;
  double objective = 0.0;
  std::vector<double> x;
  /// Simplex pivots spent producing this solution (all phases).
  long iterations = 0;
};

/// Solves the LP. `max_iters` bounds total pivot count across both phases;
/// `deadline_s` (if positive) bounds wall-clock time — exceeding either
/// returns Status::IterationLimit.
///
/// This is the cold two-phase primal path. Repeated solves of the same
/// constraint matrix under changing bounds (branch and bound) should go
/// through lp::SimplexSolver (lp/simplex_solver.h), which re-enters from the
/// previous basis via dual simplex and falls back to this routine.
Solution solve(const Problem& problem, long max_iters = 200000, double deadline_s = 0.0);

}  // namespace syccl::lp
