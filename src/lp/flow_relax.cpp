#include "lp/flow_relax.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "obs/trace.h"

namespace syccl::lp {

FlowRelaxation::FlowRelaxation(const solver::SubDemand& demand, const solver::EpochParams& ep,
                               int horizon, const FlowVarMap& map, double send_cost)
    : ep_(ep), horizon_(horizon), send_cost_(send_cost), done_vars_(map.done_vars) {
  const topo::GroupTopology& g = *demand.group;
  group_size_ = g.size();
  const int np = static_cast<int>(demand.pieces.size());
  pieces_.resize(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) {
    const solver::DemandPiece& dp = demand.pieces[static_cast<std::size_t>(p)];
    PieceInfo& pi = pieces_[static_cast<std::size_t>(p)];
    pi.is_src.assign(static_cast<std::size_t>(group_size_), 0);
    for (int s : dp.srcs) pi.is_src[static_cast<std::size_t>(s)] = 1;
    std::set<int> req;
    for (int d : dp.dsts) {
      if (pi.is_src[static_cast<std::size_t>(d)] == 0) req.insert(d);
    }
    pi.required.assign(req.begin(), req.end());
    num_commodities_ += static_cast<int>(pi.required.size());
    pi.in_arcs.assign(static_cast<std::size_t>(group_size_), {});
    pi.out_arcs.assign(static_cast<std::size_t>(group_size_), {});
  }

  arcs_.reserve(map.arcs.size());
  for (const FlowVarMap::Arc& a : map.arcs) {
    if (a.x_vars.empty()) continue;  // horizon below latency: no sends exist
    const int id = static_cast<int>(arcs_.size());
    arcs_.push_back(ArcInfo{a.piece, a.from, a.to, a.x_vars, -1});
    PieceInfo& pi = pieces_[static_cast<std::size_t>(a.piece)];
    pi.arc_ids.push_back(id);
    pi.in_arcs[static_cast<std::size_t>(a.to)].push_back(id);
    pi.out_arcs[static_cast<std::size_t>(a.from)].push_back(id);
  }
  // Commodity elision: pieces every destination of which is already a source
  // contribute no commodities and no LP arcs (their forced sends still count
  // into F_min below).
  for (ArcInfo& arc : arcs_) {
    if (!pieces_[static_cast<std::size_t>(arc.piece)].required.empty()) {
      arc.lp_col = num_lp_arcs_++;
    }
  }
  depth_.assign(static_cast<std::size_t>(group_size_), -1);
  if (num_commodities_ == 0) return;  // combinatorial bound only, no LP

  // Fixed constraint matrix: s columns [0, A), u columns [A, 2A), then z.
  // Bounds set per resolve; the ones given here are placeholders.
  Problem pb;
  const int A = num_lp_arcs_;
  for (int c = 0; c < A; ++c) pb.add_var(0.0, kInf, 0.0);  // s_a
  for (int c = 0; c < A; ++c) pb.add_var(0.0, 1.0, 0.0);   // u_a
  z_col_ = pb.add_var(0.0, kInf, 1.0);                     // minimize z

  // u_a ≤ s_a: useful flow is part of the sends the box allows.
  for (const ArcInfo& arc : arcs_) {
    if (arc.lp_col < 0) continue;
    pb.add_constraint({{{A + arc.lp_col, 1.0}, {arc.lp_col, -1.0}}, Relation::LessEq, 0.0});
  }
  // Indegree: every required (piece, destination) receives at least once.
  for (const PieceInfo& pi : pieces_) {
    for (int d : pi.required) {
      Constraint c;
      for (int id : pi.in_arcs[static_cast<std::size_t>(d)]) {
        const int col = arcs_[static_cast<std::size_t>(id)].lp_col;
        if (col >= 0) c.terms.push_back({A + col, 1.0});
      }
      if (c.terms.empty()) {
        static_infeasible_ = true;  // nothing can ever reach d
        return;
      }
      c.rel = Relation::GreaterEq;
      c.rhs = 1.0;
      pb.add_constraint(std::move(c));
    }
  }
  // Relay gating: a non-source sender forwards at most what it received.
  for (const ArcInfo& arc : arcs_) {
    if (arc.lp_col < 0) continue;
    const PieceInfo& pi = pieces_[static_cast<std::size_t>(arc.piece)];
    if (pi.is_src[static_cast<std::size_t>(arc.from)] != 0) continue;
    Constraint c;
    c.terms.push_back({A + arc.lp_col, 1.0});
    for (int id : pi.in_arcs[static_cast<std::size_t>(arc.from)]) {
      const int col = arcs_[static_cast<std::size_t>(id)].lp_col;
      if (col >= 0) c.terms.push_back({A + col, -1.0});
    }
    c.rel = Relation::LessEq;
    c.rhs = 0.0;
    pb.add_constraint(std::move(c));
  }
  // Port rows. A send from i uses i's up port, a send to j uses j's down
  // port; a port starts at most C sends per O epochs. Useful sends all start
  // by z − L (their arrivals define completion); all sends fit the horizon.
  const double rate = static_cast<double>(ep.occupancy) / static_cast<double>(ep.capacity);
  std::map<std::pair<int, int>, std::vector<int>> port_arcs;  // (port_id, dir) → lp cols
  for (const ArcInfo& arc : arcs_) {
    if (arc.lp_col < 0) continue;
    port_arcs[{g.up[static_cast<std::size_t>(arc.from)].port_id, 0}].push_back(arc.lp_col);
    port_arcs[{g.down[static_cast<std::size_t>(arc.to)].port_id, 1}].push_back(arc.lp_col);
  }
  for (const auto& [port, cols] : port_arcs) {
    (void)port;
    Constraint useful;
    for (int c : cols) useful.terms.push_back({A + c, rate});
    useful.terms.push_back({z_col_, -1.0});
    useful.rel = Relation::LessEq;
    useful.rhs = static_cast<double>(ep.occupancy - ep.lat_epochs);
    pb.add_constraint(std::move(useful));

    Constraint total;
    for (int c : cols) total.terms.push_back({c, rate});
    total.rel = Relation::LessEq;
    total.rhs = static_cast<double>(horizon - ep.lat_epochs + ep.occupancy);
    pb.add_constraint(std::move(total));
  }

  solver_ = std::make_unique<SimplexSolver>(pb);
  lo_.assign(static_cast<std::size_t>(pb.num_vars), 0.0);
  hi_.assign(static_cast<std::size_t>(pb.num_vars), 0.0);
}

milp::DualBoundProvider::Result FlowRelaxation::root_bound(const std::vector<double>& lower,
                                                           const std::vector<double>& upper) {
  return bound_impl(lower, upper, "flow.root_bound");
}

milp::DualBoundProvider::Result FlowRelaxation::node_bound(const std::vector<double>& lower,
                                                           const std::vector<double>& upper) {
  return bound_impl(lower, upper, "flow.node_bound");
}

milp::DualBoundProvider::Result FlowRelaxation::bound_impl(const std::vector<double>& lower,
                                                           const std::vector<double>& upper,
                                                           const char* span_name) {
  SYCCL_TRACE_SPAN(span, span_name, "flow");
  Result out;
  if (static_infeasible_) {
    out.infeasible = true;
    return out;
  }

  // Per-arc forced (Σ lower) and available (Σ upper) send counts from the
  // node's x-variable box. Integer boxes only ever hold 0/1 bounds here.
  const int na = static_cast<int>(arcs_.size());
  arc_lo_.assign(static_cast<std::size_t>(na), 0);
  arc_hi_.assign(static_cast<std::size_t>(na), 0);
  for (int a = 0; a < na; ++a) {
    long flo = 0, fhi = 0;
    for (int v : arcs_[static_cast<std::size_t>(a)].x_vars) {
      if (lower[static_cast<std::size_t>(v)] > 0.5) ++flo;
      if (upper[static_cast<std::size_t>(v)] > 0.5) ++fhi;
    }
    arc_lo_[static_cast<std::size_t>(a)] = flo;
    arc_hi_[static_cast<std::size_t>(a)] = fhi;
  }

  // F_min: per piece, the larger of required deliveries (each destination
  // needs its own inbound send — no multicast in the port model) and sends
  // the box already forces; summed over pieces this lower-bounds Σx.
  long fmin = 0;
  for (const PieceInfo& pi : pieces_) {
    long forced = 0;
    for (int id : pi.arc_ids) forced += arc_lo_[static_cast<std::size_t>(id)];
    fmin += std::max<long>(forced, static_cast<long>(pi.required.size()));
  }

  // MILP objective = send_cost·Σx − Σ_t done_t; done_t can only be 1 when
  // every delivery has landed by t (epochs ≥ the flow completion bound Z)
  // and branching has not fixed it to 0.
  const auto finish = [&](long z_floor) -> Result {
    long cnt = 0;
    for (int t = 1; t <= horizon_; ++t) {
      if (t >= z_floor && upper[static_cast<std::size_t>(done_vars_[static_cast<std::size_t>(t - 1)])] > 0.5) {
        ++cnt;
      }
    }
    out.bound = send_cost_ * static_cast<double>(fmin) - static_cast<double>(cnt);
    span.annotate("bound", out.bound);
    return out;
  };
  if (num_commodities_ == 0) return finish(0);

  // Reachability sweep over arcs the box still allows: a required destination
  // no open arc chain reaches is undeliverable (the box is integer-
  // infeasible, since has[p][d][T] is pinned to 1), and a forced send from an
  // unreachable non-source can never be backed by an arrival. Depths feed
  // the z floor: a destination k hops out arrives no earlier than k·L.
  long z_lo = ep_.lat_epochs;
  for (const PieceInfo& pi : pieces_) {
    if (pi.required.empty()) continue;
    std::fill(depth_.begin(), depth_.end(), -1);
    bfs_queue_.clear();
    for (int m = 0; m < group_size_; ++m) {
      if (pi.is_src[static_cast<std::size_t>(m)] != 0) {
        depth_[static_cast<std::size_t>(m)] = 0;
        bfs_queue_.push_back(m);
      }
    }
    for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
      const int v = bfs_queue_[head];
      for (int id : pi.out_arcs[static_cast<std::size_t>(v)]) {
        if (arc_hi_[static_cast<std::size_t>(id)] == 0) continue;
        const int to = arcs_[static_cast<std::size_t>(id)].to;
        if (depth_[static_cast<std::size_t>(to)] >= 0) continue;
        depth_[static_cast<std::size_t>(to)] = depth_[static_cast<std::size_t>(v)] + 1;
        bfs_queue_.push_back(to);
      }
    }
    for (int d : pi.required) {
      const int dep = depth_[static_cast<std::size_t>(d)];
      if (dep < 0) {
        out.infeasible = true;
        return out;
      }
      z_lo = std::max(z_lo, static_cast<long>(dep) * ep_.lat_epochs);
    }
    for (int id : pi.arc_ids) {
      const ArcInfo& arc = arcs_[static_cast<std::size_t>(id)];
      if (arc_lo_[static_cast<std::size_t>(id)] > 0 &&
          pi.is_src[static_cast<std::size_t>(arc.from)] == 0 &&
          depth_[static_cast<std::size_t>(arc.from)] < 0) {
        out.infeasible = true;  // forced send with nothing to send
        return out;
      }
    }
  }
  // done_t fixed to 1 asserts completion by t.
  long z_hi = horizon_;
  for (int t = 1; t <= horizon_; ++t) {
    if (lower[static_cast<std::size_t>(done_vars_[static_cast<std::size_t>(t - 1)])] > 0.5) {
      z_hi = t;
      break;
    }
  }
  if (z_lo > z_hi) {
    out.infeasible = true;  // completion forced earlier than any path allows
    return out;
  }

  const int A = num_lp_arcs_;
  for (const ArcInfo& arc : arcs_) {
    if (arc.lp_col < 0) continue;
    const std::size_t a = static_cast<std::size_t>(&arc - arcs_.data());
    lo_[static_cast<std::size_t>(arc.lp_col)] = static_cast<double>(arc_lo_[a]);
    hi_[static_cast<std::size_t>(arc.lp_col)] = static_cast<double>(arc_hi_[a]);
    lo_[static_cast<std::size_t>(A + arc.lp_col)] = 0.0;
    hi_[static_cast<std::size_t>(A + arc.lp_col)] = std::min(1.0, static_cast<double>(arc_hi_[a]));
  }
  lo_[static_cast<std::size_t>(z_col_)] = static_cast<double>(z_lo);
  hi_[static_cast<std::size_t>(z_col_)] = static_cast<double>(z_hi);

  const Basis* hint = last_basis_.basic.empty() ? nullptr : &last_basis_;
  const Solution sol = solver_->resolve(lo_, hi_, 4000, 0.0, hint);
  out.lp_iterations = sol.iterations;
  span.annotate("lp_iterations", static_cast<double>(sol.iterations));
  if (sol.status == Status::Infeasible) {
    out.infeasible = true;
    return out;
  }
  long z_floor = z_lo;  // limit/unbounded statuses fall back to the BFS floor
  if (sol.status == Status::Optimal) {
    last_basis_ = solver_->basis();
    z_floor = std::max(z_lo, std::lround(std::ceil(sol.objective - 1e-6)));
  }
  return finish(z_floor);
}

}  // namespace syccl::lp
