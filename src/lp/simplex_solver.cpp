#include "lp/simplex_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stopwatch.h"

namespace syccl::lp {

namespace {

constexpr double kPivEps = 1e-9;   ///< pivot magnitude floor
constexpr double kFeasTol = 1e-7;  ///< primal bound-violation tolerance
constexpr double kDualTol = 1e-7;  ///< reduced-cost sign tolerance
constexpr double kFixedTol = 1e-12;
/// Pivots between clean refactorizations. Gauss-Jordan updates accumulate
/// error; a long warm streak (thousands of pivots on one tableau) otherwise
/// degrades it enough to produce spurious infeasibility verdicts.
constexpr long kRefactorEvery = 256;

}  // namespace

SimplexSolver::SimplexSolver(const Problem& base, long stall_limit)
    : base_(base),
      n_(base.num_vars),
      m_(static_cast<int>(base.constraints.size())),
      total_(n_ + m_),
      stall_limit_(stall_limit) {
  for (const Constraint& c : base_.constraints) {
    for (const auto& [v, coef] : c.terms) {
      (void)coef;
      if (v < 0 || v >= n_) throw std::invalid_argument("constraint references unknown variable");
    }
  }
  base_.objective.resize(static_cast<std::size_t>(n_), 0.0);
  tab_.assign(static_cast<std::size_t>(m_) * total_, 0.0);
  rhs0_.assign(static_cast<std::size_t>(m_), 0.0);
  d_.assign(static_cast<std::size_t>(total_), 0.0);
  basic_.assign(static_cast<std::size_t>(m_), -1);
  stat_.assign(static_cast<std::size_t>(total_), kAtLower);
  beta_.assign(static_cast<std::size_t>(m_), 0.0);
  lo_.assign(static_cast<std::size_t>(total_), 0.0);
  hi_.assign(static_cast<std::size_t>(total_), kInf);
  // Slack bounds are fixed by the row relation: ≤ rows get s ∈ [0,∞),
  // ≥ rows s ∈ (−∞,0], = rows the fixed s ∈ [0,0].
  for (int r = 0; r < m_; ++r) {
    const std::size_t s = static_cast<std::size_t>(n_ + r);
    switch (base_.constraints[static_cast<std::size_t>(r)].rel) {
      case Relation::LessEq:
        lo_[s] = 0.0;
        hi_[s] = kInf;
        break;
      case Relation::GreaterEq:
        lo_[s] = -kInf;
        hi_[s] = 0.0;
        break;
      case Relation::Eq:
        lo_[s] = 0.0;
        hi_[s] = 0.0;
        break;
    }
  }
}

double SimplexSolver::col_lo(int c) const { return lo_[static_cast<std::size_t>(c)]; }
double SimplexSolver::col_hi(int c) const { return hi_[static_cast<std::size_t>(c)]; }

double SimplexSolver::nonbasic_value(int c) const {
  return stat_[static_cast<std::size_t>(c)] == kAtUpper ? col_hi(c) : col_lo(c);
}

bool SimplexSolver::crash() {
  std::fill(tab_.begin(), tab_.end(), 0.0);
  for (int r = 0; r < m_; ++r) {
    const Constraint& row = base_.constraints[static_cast<std::size_t>(r)];
    for (const auto& [v, coef] : row.terms) tab(r, v) += coef;
    tab(r, n_ + r) = 1.0;
    rhs0_[static_cast<std::size_t>(r)] = row.rhs;
    basic_[static_cast<std::size_t>(r)] = n_ + r;
    stat_[static_cast<std::size_t>(n_ + r)] = kBasic;
  }
  for (int j = 0; j < total_; ++j) {
    d_[static_cast<std::size_t>(j)] = j < n_ ? base_.objective[static_cast<std::size_t>(j)] : 0.0;
  }
  // Each structural column goes to the bound its cost sign prefers; if that
  // bound is infinite no dual-feasible crash basis exists.
  for (int j = 0; j < n_; ++j) {
    const double c = d_[static_cast<std::size_t>(j)];
    const bool lo_finite = col_lo(j) > -kInf;
    const bool hi_finite = col_hi(j) < kInf;
    if (c > kDualTol) {
      if (!lo_finite) return false;
      stat_[static_cast<std::size_t>(j)] = kAtLower;
    } else if (c < -kDualTol) {
      if (!hi_finite) return false;
      stat_[static_cast<std::size_t>(j)] = kAtUpper;
    } else if (lo_finite) {
      stat_[static_cast<std::size_t>(j)] = kAtLower;
    } else if (hi_finite) {
      stat_[static_cast<std::size_t>(j)] = kAtUpper;
    } else {
      return false;  // free column — leave to the two-phase path
    }
  }
  ++stats_.crashes;
  pivots_since_factor_ = 0;
  valid_ = true;
  return true;
}

bool SimplexSolver::refactor() {
  std::fill(tab_.begin(), tab_.end(), 0.0);
  for (int r = 0; r < m_; ++r) {
    const Constraint& row = base_.constraints[static_cast<std::size_t>(r)];
    for (const auto& [v, coef] : row.terms) tab(r, v) += coef;
    tab(r, n_ + r) = 1.0;
    rhs0_[static_cast<std::size_t>(r)] = row.rhs;
  }
  // Gauss-Jordan: give basic_[i]'s column an identity pivot in row i. Row
  // swaps re-associate rows with basic variables, which is just a relabeling
  // of B⁻¹'s row order. A numerically singular basis reports failure.
  for (int i = 0; i < m_; ++i) {
    const int c = basic_[static_cast<std::size_t>(i)];
    int p = -1;
    double best = kPivEps;
    for (int r = i; r < m_; ++r) {
      const double mag = std::fabs(tab(r, c));
      if (mag > best) {
        best = mag;
        p = r;
      }
    }
    if (p < 0) return false;
    if (p != i) {
      for (int col = 0; col < total_; ++col) std::swap(tab(p, col), tab(i, col));
      std::swap(rhs0_[static_cast<std::size_t>(p)], rhs0_[static_cast<std::size_t>(i)]);
    }
    double* prow = &tab_[static_cast<std::size_t>(i) * total_];
    const double pv = prow[c];
    for (int col = 0; col < total_; ++col) prow[col] /= pv;
    rhs0_[static_cast<std::size_t>(i)] /= pv;
    prow[c] = 1.0;
    for (int r = 0; r < m_; ++r) {
      if (r == i) continue;
      double* row = &tab_[static_cast<std::size_t>(r) * total_];
      const double f = row[c];
      if (std::fabs(f) < kPivEps) continue;
      for (int col = 0; col < total_; ++col) row[col] -= f * prow[col];
      rhs0_[static_cast<std::size_t>(r)] -= f * rhs0_[static_cast<std::size_t>(i)];
      row[c] = 0.0;
    }
  }
  // Reduced costs from scratch: d = c − c_Bᵀ (B⁻¹[A|I]).
  for (int j = 0; j < total_; ++j) {
    d_[static_cast<std::size_t>(j)] = j < n_ ? base_.objective[static_cast<std::size_t>(j)] : 0.0;
  }
  for (int i = 0; i < m_; ++i) {
    const int b = basic_[static_cast<std::size_t>(i)];
    const double cb = b < n_ ? base_.objective[static_cast<std::size_t>(b)] : 0.0;
    if (cb == 0.0) continue;
    const double* row = &tab_[static_cast<std::size_t>(i) * total_];
    for (int j = 0; j < total_; ++j) d_[static_cast<std::size_t>(j)] -= cb * row[j];
  }
  for (int i = 0; i < m_; ++i) d_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] = 0.0;
  ++stats_.refactors;
  pivots_since_factor_ = 0;
  return true;
}

void SimplexSolver::recompute_beta() {
  beta_ = rhs0_;
  for (int j = 0; j < total_; ++j) {
    if (stat_[static_cast<std::size_t>(j)] == kBasic) continue;
    const double val = nonbasic_value(j);
    if (val == 0.0) continue;
    for (int r = 0; r < m_; ++r) beta_[static_cast<std::size_t>(r)] -= tab(r, j) * val;
  }
}

void SimplexSolver::pivot(int pr, int pc) {
  double* prow = &tab_[static_cast<std::size_t>(pr) * total_];
  const double pv = prow[pc];
  for (int c = 0; c < total_; ++c) prow[c] /= pv;
  rhs0_[static_cast<std::size_t>(pr)] /= pv;
  prow[pc] = 1.0;
  for (int r = 0; r < m_; ++r) {
    if (r == pr) continue;
    double* row = &tab_[static_cast<std::size_t>(r) * total_];
    const double f = row[pc];
    if (std::fabs(f) < kPivEps) continue;
    for (int c = 0; c < total_; ++c) row[c] -= f * prow[c];
    rhs0_[static_cast<std::size_t>(r)] -= f * rhs0_[static_cast<std::size_t>(pr)];
    row[pc] = 0.0;
  }
}

Basis SimplexSolver::basis() const {
  Basis b;
  if (!valid_) return b;
  b.basic = basic_;
  b.status = stat_;
  return b;
}

Solution SimplexSolver::fallback(const std::vector<double>& lower,
                                 const std::vector<double>& upper, long max_iters,
                                 double deadline_s) {
  ++stats_.warm_fallbacks;
  valid_ = false;  // state may be stale/drifted; rebuild on the next resolve
  Problem p = base_;
  p.lower = lower;
  p.upper = upper;
  Solution s = lp::solve(p, max_iters, deadline_s);
  stats_.lp_iterations += s.iterations;
  return s;
}

bool SimplexSolver::verify(const Solution& sol) const {
  for (int j = 0; j < n_; ++j) {
    const double x = sol.x[static_cast<std::size_t>(j)];
    const double scale = std::max(1.0, std::fabs(x));
    if (x < col_lo(j) - kFeasTol * scale || x > col_hi(j) + kFeasTol * scale) return false;
  }
  for (const Constraint& row : base_.constraints) {
    double act = 0.0;
    double scale = std::max(1.0, std::fabs(row.rhs));
    for (const auto& [v, coef] : row.terms) {
      act += coef * sol.x[static_cast<std::size_t>(v)];
      scale = std::max(scale, std::fabs(coef * sol.x[static_cast<std::size_t>(v)]));
    }
    const double tol = 1e-6 * scale;
    if (row.rel == Relation::LessEq && act > row.rhs + tol) return false;
    if (row.rel == Relation::GreaterEq && act < row.rhs - tol) return false;
    if (row.rel == Relation::Eq && std::fabs(act - row.rhs) > tol) return false;
  }
  return true;
}

Solution SimplexSolver::resolve(const std::vector<double>& lower,
                                const std::vector<double>& upper, long max_iters,
                                double deadline_s, const Basis* hint) {
  util::Stopwatch clock;
  // Materialize structural bounds (lp::solve defaults: lower 0, upper +inf).
  for (int j = 0; j < n_; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    lo_[sj] = sj < lower.size() ? lower[sj] : 0.0;
    hi_[sj] = sj < upper.size() ? upper[sj] : kInf;
    if (lo_[sj] > hi_[sj] + kPivEps) return Solution{Status::Infeasible, 0.0, {}, 0};
  }

  // Repairs statuses the new bounds or a fresh factorization invalidated: a
  // nonbasic column resting on a bound that is now infinite, or whose
  // reduced-cost sign prefers the other bound (fixed binaries and Eq slacks
  // carry arbitrary signs while fixed; when a bound change unfixes them,
  // flipping to the preferred finite bound restores dual feasibility without
  // a pivot). Only a wrong-signed column with no finite bound to flip to
  // reports failure (→ cold path).
  const auto repair_statuses = [&]() -> bool {
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (stat_[sj] == kBasic) continue;
      if (col_hi(j) - col_lo(j) < kFixedTol) continue;  // fixed: any sign is dual feasible
      const double dj = d_[sj];
      if (stat_[sj] == kAtLower) {
        if (col_lo(j) <= -kInf || dj < -kDualTol) {
          if (col_hi(j) < kInf && dj <= kDualTol) {
            stat_[sj] = kAtUpper;
          } else {
            return false;
          }
        }
      } else {  // kAtUpper
        if (col_hi(j) >= kInf || dj > kDualTol) {
          if (col_lo(j) > -kInf && dj >= -kDualTol) {
            stat_[sj] = kAtLower;
          } else {
            return false;
          }
        }
      }
    }
    return true;
  };

  if (!valid_) {
    if (!crash()) return fallback(lower, upper, max_iters, deadline_s);
  } else {
    if (hint != nullptr && hint->basic == basic_ && hint->status == stat_) ++stats_.warm_exact;
    if (!repair_statuses()) return fallback(lower, upper, max_iters, deadline_s);
  }

  recompute_beta();

  // Dual simplex: restore primal feasibility while preserving dual
  // feasibility (which bound changes cannot break). `refreshed` guards the
  // refactor-and-retry performed before an Infeasible verdict is trusted.
  long iters = 0;
  long stall = 0;
  long since_check = 0;
  bool refreshed = false;
  const auto refresh = [&]() -> bool {
    if (!refactor() || !repair_statuses()) return false;
    recompute_beta();
    return true;
  };
  for (;;) {
    if (iters >= max_iters) return Solution{Status::IterationLimit, 0.0, {}, iters};
    if (deadline_s > 0 && ++since_check >= 16) {
      since_check = 0;
      if (clock.elapsed_seconds() > deadline_s) return Solution{Status::IterationLimit, 0.0, {}, iters};
    }

    // Leaving row: the basic variable furthest outside its bounds. After a
    // degenerate stall streak, degrade to the smallest violated row so that
    // together with smallest-index entering this is Bland's rule for the
    // dual simplex (termination guarantee).
    int r = -1;
    bool below = false;
    double viol = kFeasTol;
    for (int i = 0; i < m_; ++i) {
      const int b = basic_[static_cast<std::size_t>(i)];
      const double v = beta_[static_cast<std::size_t>(i)];
      const double under = col_lo(b) - v;
      const double over = v - col_hi(b);
      if (under > viol) {
        viol = under;
        r = i;
        below = true;
      }
      if (over > viol) {
        viol = over;
        r = i;
        below = false;
      }
      if (r == i && stall >= stall_limit_) break;
    }
    if (r < 0) break;  // primal feasible + dual feasible → optimal

    ++iters;
    ++stats_.lp_iterations;

    // Entering column: dual ratio test min |d_j| / |α_j| over columns that
    // can move the leaving basic back toward its violated bound. The ratio
    // test is mandatory (skipping it would break dual feasibility); the
    // Bland fallback only changes the tie-breaking to exact smallest-index
    // among minimizers, which together with the smallest-row leaving rule
    // breaks degenerate cycles.
    const double* row = &tab_[static_cast<std::size_t>(r) * total_];
    int e = -1;
    double best_ratio = kInf;
    const double tie_eps = stall >= stall_limit_ ? 0.0 : kPivEps;
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (stat_[sj] == kBasic) continue;
      if (col_hi(j) - col_lo(j) < kFixedTol) continue;  // fixed columns cannot enter
      const double a = row[j];
      if (std::fabs(a) <= kPivEps) continue;
      const bool at_lower = stat_[sj] == kAtLower;
      const bool eligible = below ? (at_lower ? a < 0.0 : a > 0.0)
                                  : (at_lower ? a > 0.0 : a < 0.0);
      if (!eligible) continue;
      const double ratio = std::fabs(d_[sj]) / std::fabs(a);
      if (ratio < best_ratio - tie_eps) {
        best_ratio = ratio;
        e = j;
      }
    }
    if (e < 0) {
      // No column can repair the violation: the LP is infeasible under these
      // bounds — but only trust the verdict on clean numerics. Accumulated
      // pivot error can fabricate both the violation and the empty entering
      // set, so refactorize once and re-enter the loop before concluding.
      if (!refreshed) {
        refreshed = true;
        if (!refresh()) return fallback(lower, upper, max_iters, deadline_s);
        continue;
      }
      // Genuinely infeasible. The basis itself stays warm-usable.
      return Solution{Status::Infeasible, 0.0, {}, iters};
    }

    const int leave = basic_[static_cast<std::size_t>(r)];
    const double target = below ? col_lo(leave) : col_hi(leave);
    const double ae = row[e];
    const double delta = (beta_[static_cast<std::size_t>(r)] - target) / ae;
    if (std::fabs(d_[static_cast<std::size_t>(e)]) < 10 * kPivEps) {
      ++stall;  // dual-degenerate pivot
    } else {
      stall = 0;
    }

    const double enter_val = nonbasic_value(e);
    for (int i = 0; i < m_; ++i) beta_[static_cast<std::size_t>(i)] -= tab(i, e) * delta;
    stat_[static_cast<std::size_t>(leave)] = below ? kAtLower : kAtUpper;
    stat_[static_cast<std::size_t>(e)] = kBasic;
    basic_[static_cast<std::size_t>(r)] = e;
    beta_[static_cast<std::size_t>(r)] = enter_val + delta;

    pivot(r, e);
    const double f = d_[static_cast<std::size_t>(e)];
    if (f != 0.0) {
      const double* prow = &tab_[static_cast<std::size_t>(r) * total_];
      for (int c = 0; c < total_; ++c) d_[static_cast<std::size_t>(c)] -= f * prow[c];
      d_[static_cast<std::size_t>(e)] = 0.0;
    }

    // Periodic clean factorization bounds the accumulated update error over
    // long warm streaks.
    if (++pivots_since_factor_ >= kRefactorEvery) {
      if (!refresh()) return fallback(lower, upper, max_iters, deadline_s);
    }
  }

  Solution sol;
  sol.status = Status::Optimal;
  sol.iterations = iters;
  sol.x.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) sol.x[static_cast<std::size_t>(j)] = nonbasic_value(j);
  for (int i = 0; i < m_; ++i) {
    const int b = basic_[static_cast<std::size_t>(i)];
    if (b < n_) sol.x[static_cast<std::size_t>(b)] = beta_[static_cast<std::size_t>(i)];
  }
  if (!verify(sol)) return fallback(lower, upper, max_iters, deadline_s);
  for (int j = 0; j < n_; ++j) {
    double& x = sol.x[static_cast<std::size_t>(j)];
    x = std::min(std::max(x, col_lo(j)), col_hi(j));
    sol.objective += base_.objective[static_cast<std::size_t>(j)] * x;
  }
  ++stats_.warm_hits;
  return sol;
}

}  // namespace syccl::lp
