// Operating SyCCL like a production deployment: load the cluster from a
// topology file, keep a persistent schedule library, and serve the traced
// collectives of a training job from it — synthesizing only on cache misses.
#include <cstdio>
#include <filesystem>

#include "core/asymmetric.h"
#include "core/cache.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/serialize.h"
#include "training/trace.h"

int main() {
  using namespace syccl;

  // A deployment would read this file from its inventory system; we write it
  // from a builder to keep the example self-contained.
  const std::string topology_file =
      (std::filesystem::temp_directory_path() / "syccl_example_cluster.topo").string();
  {
    const topo::Topology cluster = topo::build_h800_cluster(2);
    std::FILE* f = std::fopen(topology_file.c_str(), "w");
    const std::string text = topo::to_text(cluster);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

  // Load it back — the schedule pipeline only ever sees the parsed form.
  std::string text;
  {
    std::FILE* f = std::fopen(topology_file.c_str(), "r");
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  const topo::Topology cluster = topo::from_text(text);
  std::printf("loaded %s\n", cluster.summary().c_str());

  core::Synthesizer synth(cluster);
  core::ScheduleLibrary library(synth);
  const std::string library_dir =
      (std::filesystem::temp_directory_path() / "syccl_example_library").string();
  std::printf("library: loaded %d schedules from %s\n", library.load(library_dir),
              library_dir.c_str());

  // Serve a training job's collectives.
  training::TrainSetup setup;
  setup.model = training::gpt3_6p7b();
  setup.mode = training::Parallelism::TensorParallel;
  setup.num_gpus = 16;
  setup.batch_tokens = 8192;
  for (const auto& call : training::trace_iteration(setup)) {
    const coll::Collective c = call.materialise(16);
    const bool hit = library.contains(c);
    const auto& r = library.get(c);
    std::printf("  %-14s %6.1f MB x%d: %.3f ms  [%s]\n", coll::kind_name(call.kind),
                call.bytes / 1e6, call.count, r.predicted_time * 1e3,
                hit ? "cache hit" : "synthesized");
  }
  std::printf("library: saved %d schedules\n", library.save(library_dir));

  // MoE layers issue asymmetric Alltoallv — the §8 heuristic path.
  core::DemandMatrix moe(16, std::vector<std::uint64_t>(16, 64 << 10));
  for (int i = 0; i < 16; ++i) moe[i][i] = 0;
  for (int s = 0; s < 16; ++s) {
    if (s != 5) moe[s][5] = 4 << 20;  // one hot expert
  }
  const auto a2av = core::synthesize_alltoallv(moe, synth.groups());
  const sim::Simulator sim(synth.groups());
  std::printf("MoE Alltoallv (hot expert on rank 5): %.3f ms, valid=%s\n",
              sim.run(a2av).makespan * 1e3,
              core::verify_alltoallv(a2av, moe) ? "yes" : "NO");
  return 0;
}
