// Quickstart: synthesize a schedule with SyCCL, compare it against NCCL's
// fixed ring on the same simulator, and export it to MSCCL-style XML.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "baselines/nccl.h"
#include "coll/busbw.h"
#include "core/synthesizer.h"
#include "runtime/xml.h"
#include "sim/simulator.h"
#include "topo/builders.h"

int main() {
  using namespace syccl;

  // 1. Describe the cluster: two H800-style servers (8 GPUs each, NVSwitch
  //    inside, one 400G NIC per GPU, rail-optimised leaf switches).
  const topo::Topology cluster = topo::build_h800_cluster(2);
  const topo::TopologyGroups groups = topo::extract_groups(cluster);
  std::printf("%s\n", cluster.summary().c_str());
  for (int d = 0; d < groups.num_dims(); ++d) {
    std::printf("  dimension %d (%s): %zu groups, bandwidth share %.2f\n", d,
                groups.dims[d].link_kind.c_str(), groups.dims[d].groups.size(),
                groups.dims[d].bandwidth_share);
  }

  // 2. Describe the collective: a 64 MB AllGather over all 16 GPUs.
  const coll::Collective ag = coll::make_allgather(16, 64ull << 20);
  std::printf("collective: %s\n", ag.describe().c_str());

  // 3. Synthesize with SyCCL.
  core::Synthesizer synth(cluster);
  const core::SynthesisResult result = synth.synthesize(ag);
  std::printf("SyCCL:  %.3f ms  (busbw %.1f GB/s), synthesized in %.2f s\n",
              result.predicted_time * 1e3, coll::busbw_GBps(ag, result.predicted_time),
              result.breakdown.total_s);
  std::printf("  winning combination: %s\n", result.chosen.c_str());

  // 4. Compare against NCCL's hierarchical ring on the same simulator.
  const sim::Simulator simulator(groups);
  const sim::Schedule ring = baselines::nccl_ring_allgather(ag, groups);
  const double t_ring = simulator.time_collective(ring, ag);
  std::printf("NCCL:   %.3f ms  (busbw %.1f GB/s) → SyCCL speedup %.2fx\n", t_ring * 1e3,
              coll::busbw_GBps(ag, t_ring), t_ring / result.predicted_time);

  // 5. Export the schedule as MSCCL-style XML (the executor artifact).
  const std::string xml = runtime::to_xml(result.schedule, ag.num_ranks());
  std::printf("exported XML: %zu bytes, first line: %.60s...\n", xml.size(), xml.c_str());
  return 0;
}
