// Multi-rail AllGather sweep: the paper's motivating workload (§2.1).
//
// Sweeps data sizes on a rail-optimised H800 cluster and prints busbw for
// SyCCL, NCCL's fixed ring and the best hand-crafted expert schedule — the
// small-size latency win and the large-size bandwidth story of Fig. 15(a).
#include <cstdio>
#include <vector>

#include "baselines/crafted.h"
#include "baselines/nccl.h"
#include "coll/busbw.h"
#include "core/synthesizer.h"
#include "sim/simulator.h"
#include "topo/builders.h"

int main(int argc, char** argv) {
  using namespace syccl;
  const int servers = argc > 1 ? std::atoi(argv[1]) : 4;

  const topo::Topology cluster = topo::build_h800_cluster(servers);
  const topo::TopologyGroups groups = topo::extract_groups(cluster);
  const int n = servers * 8;
  const sim::Simulator sim(groups);
  core::Synthesizer synth(cluster);

  std::printf("AllGather on %d H800 GPUs (%d servers)\n", n, servers);
  std::printf("%-10s %12s %12s %12s %10s\n", "size", "NCCL GB/s", "crafted GB/s",
              "SyCCL GB/s", "speedup");

  for (const std::uint64_t size : {std::uint64_t{64} << 10, std::uint64_t{1} << 20,
                                   std::uint64_t{16} << 20, std::uint64_t{256} << 20,
                                   std::uint64_t{1} << 30}) {
    const coll::Collective ag = coll::make_allgather(n, size);

    const double t_nccl = sim.time_collective(baselines::nccl_ring_allgather(ag, groups), ag);

    double t_crafted = 1e300;
    for (auto& s : baselines::crafted_allgather_suite(ag, groups, true)) {
      t_crafted = std::min(t_crafted, sim.time_collective(s, ag));
    }

    const double t_syccl = synth.synthesize(ag).predicted_time;

    std::printf("%-10.0f %12.1f %12.1f %12.1f %9.2fx\n", static_cast<double>(size),
                coll::busbw_GBps(ag, t_nccl), coll::busbw_GBps(ag, t_crafted),
                coll::busbw_GBps(ag, t_syccl), t_nccl / t_syccl);
  }
  return 0;
}
