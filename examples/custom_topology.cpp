// Building a custom topology by hand: an asymmetric two-tier cluster that
// none of the stock builders produce, profiled and scheduled end-to-end.
//
// Demonstrates: Topology construction, automatic dimension/group extraction,
// the network profiler, rooted-collective synthesis, schedule validation and
// the XML artifact path.
#include <cstdio>

#include "core/synthesizer.h"
#include "profiler/profiler.h"
#include "runtime/validate.h"
#include "runtime/xml.h"
#include "topo/topology.h"

int main() {
  using namespace syccl;

  // Three 4-GPU servers; GPUs reach a shared leaf switch through one
  // 200 Gbps NIC per pair of GPUs (an A100-style PCIe layout).
  topo::Topology t;
  std::vector<topo::NodeId> gpus;
  const double nv_beta = 1.0 / 200e9;
  const double nic_beta = 1.0 / 25e9;
  const topo::NodeId leaf = t.add_node(topo::NodeKind::Switch, -1, 1, "leaf0");
  for (int s = 0; s < 3; ++s) {
    const topo::NodeId nvsw =
        t.add_node(topo::NodeKind::Switch, s, 0, "nvswitch" + std::to_string(s));
    for (int g = 0; g < 4; ++g) {
      const topo::NodeId gpu = t.add_node(topo::NodeKind::Gpu, s, g,
                                          "gpu" + std::to_string(s) + "." + std::to_string(g));
      gpus.push_back(gpu);
      t.add_duplex_link(gpu, nvsw, 0.2e-6, nv_beta, "nvlink");
    }
    for (int n = 0; n < 2; ++n) {
      const topo::NodeId nic =
          t.add_node(topo::NodeKind::Nic, s, n, "nic" + std::to_string(s) + std::to_string(n));
      for (int k = 0; k < 2; ++k) {
        t.add_duplex_link(gpus[static_cast<std::size_t>(s * 4 + n * 2 + k)], nic, 0.2e-6,
                          nic_beta / 4, "pcie");
      }
      t.add_duplex_link(nic, leaf, 2.5e-6, nic_beta, "net");
    }
  }
  std::printf("%s\n", t.summary().c_str());

  // Dimension/group extraction discovers the structure automatically.
  const topo::TopologyGroups groups = topo::extract_groups(t);
  for (int d = 0; d < groups.num_dims(); ++d) {
    std::printf("dimension %d: %zu groups of size %d\n", d, groups.dims[d].groups.size(),
                groups.dims[d].groups[0].size());
  }

  // Profile the link classes like a real deployment would.
  for (const auto& p : profiler::profile_topology(t)) {
    std::printf("dim %d: alpha %.2f us, bandwidth %.1f GB/s (R² %.4f)\n", p.dim, p.alpha * 1e6,
                1.0 / p.beta / 1e9, p.r_squared);
  }

  // Synthesize a Broadcast from GPU 5 and validate the result.
  core::Synthesizer synth(t);
  const coll::Collective bc = coll::make_broadcast(12, 32 << 20, 5);
  const auto result = synth.synthesize(bc);
  const auto report = runtime::validate_schedule(result.schedule, bc, groups);
  std::printf("broadcast from rank 5: %.3f ms, %zu ops, validation %s\n",
              result.predicted_time * 1e3, result.schedule.ops.size(),
              report.ok ? "OK" : "FAILED");

  // Round-trip through the XML executor format.
  const auto parsed = runtime::from_xml(runtime::to_xml(result.schedule, 12));
  std::printf("XML round trip: %zu ops preserved\n", parsed.ops.size());
  return 0;
}
