// End-to-end training-step comparison (the paper's §7.5 use case).
//
// Traces the collective calls of GPT-3 6.7B under 16-way data parallelism on
// the A100 testbed, synthesizes schedules with SyCCL, and compares the
// modelled iteration time against NCCL's fixed schedules.
#include <cstdio>
#include <map>

#include "baselines/nccl.h"
#include "core/synthesizer.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "training/iteration.h"

int main() {
  using namespace syccl;

  const topo::Topology cluster = topo::build_a100_testbed(16);
  const topo::TopologyGroups groups = topo::extract_groups(cluster);
  const sim::Simulator sim(groups);
  core::Synthesizer synth(cluster);

  training::TrainSetup setup;
  setup.model = training::gpt3_6p7b();
  setup.mode = training::Parallelism::DataParallel;
  setup.num_gpus = 16;
  setup.batch_tokens = 40960;
  const training::IterationModel model;

  std::printf("%s, %s%d, %llu tokens/iteration\n", setup.model.name.c_str(),
              training::parallelism_name(setup.mode), setup.num_gpus,
              static_cast<unsigned long long>(setup.batch_tokens));
  std::printf("compute-only time: %.1f ms\n", training::compute_time(setup, model) * 1e3);

  // Traced collectives and their per-call times under both schedule families.
  for (const auto& call : training::trace_iteration(setup)) {
    const coll::Collective c = call.materialise(setup.num_gpus);
    const double t_nccl = sim.time_collective(baselines::nccl_schedule(c, groups), c);
    const double t_syccl = synth.synthesize(c).predicted_time;
    std::printf("  %-14s %8.0f MB x%d : NCCL %.2f ms, SyCCL %.2f ms\n",
                coll::kind_name(call.kind), call.bytes / 1e6, call.count, t_nccl * 1e3,
                t_syccl * 1e3);
  }

  const double iter_nccl = training::iteration_time(setup, model, [&](const coll::Collective& c) {
    return sim.time_collective(baselines::nccl_schedule(c, groups), c);
  });
  const double iter_syccl = training::iteration_time(
      setup, model, [&](const coll::Collective& c) { return synth.synthesize(c).predicted_time; });

  std::printf("iteration time: NCCL %.1f ms, SyCCL %.1f ms (%.1f%% faster)\n", iter_nccl * 1e3,
              iter_syccl * 1e3, 100.0 * (iter_nccl - iter_syccl) / iter_nccl);
  return 0;
}
