// Shared helpers for the figure/table reproduction benches.
//
// Environment knobs:
//   SYCCL_BENCH_FAST=1    — coarser size sweep and smaller TECCL budgets
//                           (for smoke runs); default is the full sweep.
//   SYCCL_TECCL_BUDGET=s  — per-point TECCL solver budget in seconds.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/busbw.h"
#include "coll/collective.h"

namespace benchutil {

/// Line-buffer stdout so long-running benches stream rows as they finish
/// (printf to a pipe is block-buffered by default).
struct LineBufferInit {
  LineBufferInit() { std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16); }
};
inline LineBufferInit line_buffer_init;

inline bool fast_mode() {
  const char* v = std::getenv("SYCCL_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline double teccl_budget(double dflt) {
  const char* v = std::getenv("SYCCL_TECCL_BUDGET");
  return v != nullptr ? std::atof(v) : (fast_mode() ? dflt / 2 : dflt);
}

/// The paper's x axis: 1KB … 4GB. Full sweep uses ×4 steps (11 points);
/// fast mode ×16 (6 points).
inline std::vector<std::uint64_t> size_sweep(std::uint64_t lo = 1024,
                                             std::uint64_t hi = 4ull << 30) {
  std::vector<std::uint64_t> out;
  const std::uint64_t step = fast_mode() ? 16 : 4;
  for (std::uint64_t s = lo; s <= hi; s *= step) out.push_back(s);
  return out;
}

inline std::string human_size(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%lluG", static_cast<unsigned long long>(bytes >> 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%lluM", static_cast<unsigned long long>(bytes >> 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluK", static_cast<unsigned long long>(bytes >> 10));
  }
  return buf;
}

inline double gbps(const syccl::coll::Collective& coll, double seconds) {
  return syccl::coll::busbw_GBps(coll, seconds);
}

inline void header(const char* title) {
  std::printf("\n================ %s ================\n", title);
}

/// Echoes a bench's JSON result line to stdout and to `BENCH_<name>.json` in
/// the working directory (the perf-trajectory artefact; gitignored). A
/// failure to open the file only warns: the stdout line is the primary
/// record, the file a convenience for diffing across runs.
inline void emit_json(const char* name, const std::string& json) {
  std::printf("%s\n", json.c_str());
  const std::string path = std::string("BENCH_") + name + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
  }
}

}  // namespace benchutil
