// Table 6 reproduction: end-to-end training iteration time (ms) for
// GPT3-6.7B and Llama3-8B under DP16 / TP16 / TP32, with NCCL, TECCL and
// SyCCL schedules on the A100 testbed.
#include <cstdio>
#include <map>

#include "baselines/nccl.h"
#include "baselines/teccl.h"
#include "bench_util.h"
#include "core/synthesizer.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "training/iteration.h"

using namespace syccl;

namespace {

struct Row {
  const char* label;
  training::ModelSpec model;
  training::Parallelism mode;
  int gpus;
  std::uint64_t batch_tokens;
};

}  // namespace

int main() {
  benchutil::header("Table 6: training iteration time (ms)");

  const std::vector<Row> rows = {
      {"GPT3-6.7B, DP16", training::gpt3_6p7b(), training::Parallelism::DataParallel, 16, 40960},
      {"GPT3-6.7B, TP16", training::gpt3_6p7b(), training::Parallelism::TensorParallel, 16, 8192},
      {"GPT3-6.7B, TP32", training::gpt3_6p7b(), training::Parallelism::TensorParallel, 32,
       16384},
      {"Llama3-8B, DP16", training::llama3_8b(), training::Parallelism::DataParallel, 16, 65536},
      {"Llama3-8B, TP16", training::llama3_8b(), training::Parallelism::TensorParallel, 16,
       16384},
      {"Llama3-8B, TP32", training::llama3_8b(), training::Parallelism::TensorParallel, 32,
       65536},
  };

  std::printf("%-18s %10s %10s %10s %9s %9s\n", "Model", "NCCL", "TECCL", "SyCCL", "vs NCCL",
              "vs TECCL");

  const training::IterationModel model;
  const double teccl_budget = benchutil::teccl_budget(4.0);

  std::map<int, topo::Topology> topos;
  for (const auto& row : rows) {
    if (topos.find(row.gpus) == topos.end()) {
      topos.emplace(row.gpus, topo::build_a100_testbed(row.gpus));
    }
  }

  for (const auto& row : rows) {
    const topo::Topology& topo = topos.at(row.gpus);
    const topo::TopologyGroups groups = topo::extract_groups(topo);
    const sim::Simulator sim(groups);
    core::Synthesizer synth(topo);

    training::TrainSetup setup;
    setup.model = row.model;
    setup.mode = row.mode;
    setup.num_gpus = row.gpus;
    setup.batch_tokens = row.batch_tokens;

    // Memoise per-collective times (the trace repeats identical calls).
    auto memo = [](auto fn) {
      auto cache = std::make_shared<std::map<std::pair<int, std::uint64_t>, double>>();
      return [fn, cache](const coll::Collective& c) {
        const auto key = std::make_pair(static_cast<int>(c.kind()), c.total_bytes());
        auto it = cache->find(key);
        if (it == cache->end()) it = cache->emplace(key, fn(c)).first;
        return it->second;
      };
    };

    const double t_nccl = training::iteration_time(
        setup, model, memo([&](const coll::Collective& c) {
          return sim.time_collective(baselines::nccl_schedule(c, groups), c);
        }));
    const double t_teccl = training::iteration_time(
        setup, model, memo([&](const coll::Collective& c) {
          baselines::TecclOptions opts;
          opts.time_budget_s = teccl_budget;
          const auto r = baselines::teccl_synthesize(c, groups, opts);
          return r.timed_out ? sim.time_collective(baselines::nccl_schedule(c, groups), c)
                             : r.predicted_time;
        }));
    const double t_syccl = training::iteration_time(
        setup, model,
        memo([&](const coll::Collective& c) { return synth.synthesize(c).predicted_time; }));

    std::printf("%-18s %10.1f %10.1f %10.1f %8.1f%% %8.1f%%\n", row.label, t_nccl * 1e3,
                t_teccl * 1e3, t_syccl * 1e3, 100.0 * (t_nccl - t_syccl) / t_nccl,
                100.0 * (t_teccl - t_syccl) / t_teccl);
  }
  return 0;
}
