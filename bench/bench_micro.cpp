// Microbenchmarks (google-benchmark): throughput of the substrates under the
// synthesizer — simulator, group extraction, sketch search, greedy and MILP
// sub-demand solvers, LP simplex, schedule merging.
#include <benchmark/benchmark.h>

#include "coll/collective.h"
#include "core/synthesizer.h"
#include "lp/simplex.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "sketch/alltoall.h"
#include "sketch/search.h"
#include "solver/greedy.h"
#include "solver/milp_scheduler.h"
#include "solver/solve_cache.h"
#include "solver/tau.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace {

using namespace syccl;

sim::Schedule make_ring_schedule(const coll::Collective& ag) {
  const int n = ag.num_ranks();
  sim::Schedule s;
  s.pieces = sim::pieces_for(ag);
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      const int piece = ((r - step) % n + n) % n;
      s.add_op(piece, r, (r + 1) % n);
    }
  }
  return s;
}

void BM_SimulatorRingAllGather(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  const auto topo = topo::build_h800_cluster(servers);
  const auto groups = topo::extract_groups(topo);
  const auto ag = coll::make_allgather(servers * 8, 1ull << 30);
  const auto sched = make_ring_schedule(ag);
  const sim::Simulator sim(groups);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(sched).makespan);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sched.ops.size()));
}
BENCHMARK(BM_SimulatorRingAllGather)->Arg(2)->Arg(8)->Arg(16);

void BM_GroupExtraction(benchmark::State& state) {
  const auto topo = topo::build_h800_cluster(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::extract_groups(topo).num_dims());
  }
}
BENCHMARK(BM_GroupExtraction)->Arg(2)->Arg(8)->Arg(16);

void BM_SketchSearch(benchmark::State& state) {
  const auto topo = topo::build_h800_cluster(static_cast<int>(state.range(0)));
  const auto groups = topo::extract_groups(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sketch::search_sketches(groups, 0, sketch::RootedPattern::Broadcast).size());
  }
}
BENCHMARK(BM_SketchSearch)->Arg(2)->Arg(8)->Arg(32);

void BM_AllToAllReplication(benchmark::State& state) {
  const auto topo = topo::build_h800_cluster(static_cast<int>(state.range(0)));
  const auto groups = topo::extract_groups(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sketch::generate_alltoall_combinations(groups, sketch::RootedPattern::Broadcast)
            .size());
  }
}
BENCHMARK(BM_AllToAllReplication)->Arg(2)->Arg(8);

void BM_GreedySubDemand(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto topo = topo::build_single_server(n);
  const auto groups = topo::extract_groups(topo);
  const auto& gt = groups.dims[0].groups[0];
  solver::SubDemand demand;
  demand.group = &gt;
  demand.piece_bytes = 1 << 20;
  for (int r = 0; r < n; ++r) {
    solver::DemandPiece p;
    p.id = r;
    p.srcs = {r};
    for (int d = 0; d < n; ++d) {
      if (d != r) p.dsts.push_back(d);
    }
    demand.pieces.push_back(std::move(p));
  }
  const auto ep = solver::derive_epoch_params(gt, demand.piece_bytes, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_greedy(demand, ep).num_epochs);
  }
}
BENCHMARK(BM_GreedySubDemand)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_MilpSubDemandBroadcast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto topo = topo::build_single_server(n);
  const auto groups = topo::extract_groups(topo);
  const auto& gt = groups.dims[0].groups[0];
  solver::SubDemand demand;
  demand.group = &gt;
  demand.piece_bytes = 1 << 16;
  solver::DemandPiece p;
  p.id = 0;
  p.srcs = {0};
  for (int d = 1; d < n; ++d) p.dsts.push_back(d);
  demand.pieces.push_back(std::move(p));
  solver::MilpSchedulerOptions opts;
  opts.time_limit_s = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_sub_demand(demand, opts).num_epochs);
  }
}
BENCHMARK(BM_MilpSubDemandBroadcast)->Arg(4)->Arg(6)->Arg(8);

void BM_MilpEncode(benchmark::State& state) {
  // The encode step in isolation (variable tables + constraint emission);
  // the satellite target of the flat-key Encoding rewrite.
  const int n = static_cast<int>(state.range(0));
  const auto topo = topo::build_single_server(n);
  const auto groups = topo::extract_groups(topo);
  const auto& gt = groups.dims[0].groups[0];
  solver::SubDemand demand;
  demand.group = &gt;
  demand.piece_bytes = 1 << 16;
  solver::DemandPiece p;
  p.id = 0;
  p.srcs = {0};
  for (int d = 1; d < n; ++d) p.dsts.push_back(d);
  demand.pieces.push_back(std::move(p));
  const auto ep = solver::derive_epoch_params(gt, demand.piece_bytes, 1.0);
  const int horizon = solver::solve_greedy(demand, ep).num_epochs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::encode_sub_demand_binaries(demand, 1.0, horizon));
  }
}
BENCHMARK(BM_MilpEncode)->Arg(4)->Arg(8)->Arg(16);

core::SynthesisConfig synth_bench_config(bool use_cache) {
  core::SynthesisConfig cfg;
  cfg.sketch.search.max_sketches = 32;
  cfg.sketch.max_prototypes = 4;
  cfg.sketch.combine.max_outputs = 10;
  cfg.coarse_solver.time_limit_s = 0.1;
  cfg.fine_solver.time_limit_s = 0.2;
  cfg.use_solve_cache = use_cache;
  return cfg;
}

void BM_SynthesizeAllGatherColdCache(benchmark::State& state) {
  // End-to-end Synthesizer::synthesize with the solve cache cleared every
  // iteration — the cost of a first-ever synthesis.
  const auto topo = topo::build_h800_cluster(2);
  const auto coll = coll::make_allgather(16, 16 << 20);
  for (auto _ : state) {
    solver::SubScheduleCache::instance().clear();
    core::Synthesizer synth(topo, synth_bench_config(true));
    benchmark::DoNotOptimize(synth.synthesize(coll).predicted_time);
  }
}
BENCHMARK(BM_SynthesizeAllGatherColdCache)->Unit(benchmark::kMillisecond);

void BM_SynthesizeAllGatherWarmCache(benchmark::State& state) {
  // Same synthesis with a warm process-wide cache — the steady-state cost
  // inside a size sweep or repeated ScheduleLibrary misses.
  const auto topo = topo::build_h800_cluster(2);
  const auto coll = coll::make_allgather(16, 16 << 20);
  solver::SubScheduleCache::instance().clear();
  {
    core::Synthesizer warmup(topo, synth_bench_config(true));
    warmup.synthesize(coll);
  }
  for (auto _ : state) {
    core::Synthesizer synth(topo, synth_bench_config(true));
    benchmark::DoNotOptimize(synth.synthesize(coll).predicted_time);
  }
}
BENCHMARK(BM_SynthesizeAllGatherWarmCache)->Unit(benchmark::kMillisecond);

void BM_SimplexLp(benchmark::State& state) {
  // A transportation LP scaled by the argument.
  const int m = static_cast<int>(state.range(0));
  lp::Problem p;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(m),
                                  std::vector<int>(static_cast<std::size_t>(m)));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          p.add_var(0, lp::kInf, 1.0 + ((i * 7 + j * 3) % 5));
    }
  }
  for (int i = 0; i < m; ++i) {
    lp::Constraint supply, demand;
    for (int j = 0; j < m; ++j) {
      supply.terms.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
      demand.terms.push_back({x[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], 1.0});
    }
    supply.rel = lp::Relation::LessEq;
    supply.rhs = 10.0 + i;
    demand.rel = lp::Relation::GreaterEq;
    demand.rhs = 5.0 + i % 3;
    p.add_constraint(supply);
    p.add_constraint(demand);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(p).objective);
  }
}
BENCHMARK(BM_SimplexLp)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
