// Figure 15 reproduction: schedule performance on the H800 cluster.
//   (a) AllGather, 64 GPUs   (b) AllGather, 512 GPUs (TECCL times out)
//   (c) AlltoAll, 64 GPUs
#include <cstdio>

#include "baselines/nccl.h"
#include "baselines/teccl.h"
#include "bench_util.h"
#include "core/synthesizer.h"
#include "sim/simulator.h"
#include "topo/builders.h"

using namespace syccl;

namespace {

void run_panel(const char* title, int servers, coll::CollKind kind, bool with_teccl,
               std::uint64_t max_size) {
  benchutil::header(title);
  const topo::Topology topo = topo::build_h800_cluster(servers);
  const topo::TopologyGroups groups = topo::extract_groups(topo);
  const int n = servers * 8;
  // Large scale: coarser pipelining keeps the simulator O(seconds) per point.
  sim::SimOptions sopts;
  if (n >= 256) sopts.max_blocks = 2;
  const sim::Simulator sim(groups, sopts);
  core::SynthesisConfig cfg;
  cfg.sim = sopts;
  core::Synthesizer synth(topo, cfg);
  baselines::TecclOptions teccl_opts;
  teccl_opts.time_budget_s = benchutil::teccl_budget(5.0);

  std::printf("%-8s %12s %12s %12s %10s\n", "size", "TECCL GB/s", "NCCL GB/s", "SyCCL GB/s",
              "vs NCCL");
  // Large scale costs minutes per point; sample the axis instead of the full
  // sweep (the paper's crossover sits in the sampled range).
  std::vector<std::uint64_t> sizes;
  if (n >= 256) {
    for (const std::uint64_t c : {std::uint64_t{1} << 20, std::uint64_t{16} << 20,
                                  std::uint64_t{256} << 20, std::uint64_t{1} << 30}) {
      if (c < max_size) sizes.push_back(c);
    }
    sizes.push_back(max_size);
  } else {
    sizes = benchutil::size_sweep(1024, max_size);
  }
  for (const auto size : sizes) {
    coll::Collective c = kind == coll::CollKind::AllGather ? coll::make_allgather(n, size)
                                                           : coll::make_alltoall(n, size);
    const double t_nccl = sim.time_collective(baselines::nccl_schedule(c, groups), c);
    double t_teccl = -1.0;
    if (with_teccl) {
      const auto teccl = baselines::teccl_synthesize(c, groups, teccl_opts);
      if (!teccl.timed_out) t_teccl = teccl.predicted_time;
    }
    const double t_syccl = synth.synthesize(c).predicted_time;
    std::printf("%-8s %12.1f %12.1f %12.1f %9.2fx\n", benchutil::human_size(size).c_str(),
                t_teccl > 0 ? benchutil::gbps(c, t_teccl) : 0.0, benchutil::gbps(c, t_nccl),
                benchutil::gbps(c, t_syccl), t_nccl / t_syccl);
  }
  if (!with_teccl) {
    std::printf("(TECCL: timed out with no solution output — whole-collective model at this "
                "scale, Table 5)\n");
  }
}

}  // namespace

int main() {
  const std::uint64_t cap = benchutil::fast_mode() ? (256ull << 20) : (4ull << 30);
  run_panel("Fig 15(a): AllGather, 64 H800", 8, coll::CollKind::AllGather, true, cap);
  run_panel("Fig 15(b): AllGather, 512 H800", 64, coll::CollKind::AllGather, false,
            benchutil::fast_mode() ? (64ull << 20) : (1ull << 30));
  run_panel("Fig 15(c): AlltoAll, 64 H800", 8, coll::CollKind::AllToAll, true, cap);
  return 0;
}
