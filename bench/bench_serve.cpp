// Schedule-compiler service bench (BENCH_serve.json): measures the broker's
// warm-hit path against cold synthesis and the canonical key's coverage of
// isomorphic re-requests.
//
// Gates:
//   1. A warm hit (canonicalize + library fetch + rank remap + validate +
//      re-simulate) must be ≥100× faster than the cold synthesis it replaces.
//   2. Re-requesting the same collective on randomly rank-permuted copies of
//      the topology must hit the library every time (100% hit rate) — the
//      canonical scenario key is what makes the service a library rather
//      than a per-labelling cache.
//   3. Degraded path: a request whose deadline expires during cold synthesis
//      is answered with a minimal-budget fallback ≥20× faster than the full
//      synthesis it stands in for, and the background full synthesis must
//      land and upgrade the library entry (a later request hits full-budget).
//
// Registered under the ctest configuration/label `perf` (`ctest -C perf`).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/broker.h"
#include "serve/library.h"
#include "topo/builders.h"
#include "topo/mutate.h"
#include "util/stopwatch.h"

using namespace syccl;

namespace {

/// Same deterministic budgets as bench_resynth: the B&B admits the size-8
/// all-to-all classes instead of the greedy fallback, putting cold synthesis
/// in the seconds range — the kind of work a schedule library amortises.
core::SynthesisConfig bench_config() {
  core::SynthesisConfig cfg;
  cfg.sketch.search.max_sketches = 16;
  cfg.sketch.max_prototypes = 2;
  cfg.sketch.combine.max_outputs = 4;
  for (auto* opts : {&cfg.coarse_solver, &cfg.fine_solver}) {
    opts->max_binaries = 4000;
    opts->node_limit = 3;
    opts->time_limit_s = 1e6;
  }
  return cfg;
}

}  // namespace

int main() {
  topo::MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 8;
  spec.with_spine = false;
  const topo::Topology base = topo::build_multi_rail(spec);
  const std::uint64_t bytes = 16 << 20;

  const std::filesystem::path dir = "bench_serve_library";
  std::filesystem::remove_all(dir);
  serve::DiskLibraryConfig lib_cfg;
  lib_cfg.dir = dir.string();
  serve::DiskLibrary library(lib_cfg);

  serve::BrokerConfig cfg;
  cfg.synthesis = bench_config();
  cfg.verify_served = true;
  serve::Broker broker(library, cfg);

  serve::ServeRequest request;
  request.topology = base;
  request.kind = coll::CollKind::AllToAll;
  request.total_bytes = bytes;

  // Cold: first request synthesizes.
  util::Stopwatch cold_clock;
  const serve::ServeResponse cold = broker.handle(request);
  const double cold_s = cold_clock.elapsed_seconds();
  if (cold.hit) {
    std::fprintf(stderr, "FAIL: cold request hit a fresh library\n");
    return 1;
  }

  // Warm: identical re-requests must all hit; median latency over 20.
  std::vector<double> warm(20);
  for (double& w : warm) {
    util::Stopwatch clock;
    const serve::ServeResponse r = broker.handle(request);
    w = clock.elapsed_seconds();
    if (!r.hit || r.scenario_key != cold.scenario_key) {
      std::fprintf(stderr, "FAIL: identical warm re-request missed the library\n");
      return 1;
    }
  }
  std::sort(warm.begin(), warm.end());
  const double warm_s = warm[warm.size() / 2];

  // Isomorphic: random rank relabellings of the same fabric must hit too.
  const int n = static_cast<int>(base.num_gpus());
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937 gen(17);
  int iso_hits = 0;
  const int iso_requests = 10;
  for (int i = 0; i < iso_requests; ++i) {
    std::shuffle(perm.begin(), perm.end(), gen);
    serve::ServeRequest permuted = request;
    permuted.topology = topo::permute_gpu_ranks(base, perm);
    const serve::ServeResponse r = broker.handle(permuted);
    if (r.hit && r.scenario_key == cold.scenario_key) ++iso_hits;
  }

  // Degraded path: fresh library, same scenario, a deadline far shorter than
  // the cold synthesis measured above. The broker must answer with the
  // minimal-budget fallback right after the deadline and upgrade the entry
  // once the full synthesis (still running on the pool) lands.
  const std::filesystem::path ddir = "bench_serve_library_degraded";
  std::filesystem::remove_all(ddir);
  serve::DiskLibraryConfig dlib_cfg;
  dlib_cfg.dir = ddir.string();
  serve::DiskLibrary dlibrary(dlib_cfg);
  serve::BrokerConfig dcfg = cfg;
  // The solve cache is process-global and already warm from the cold run
  // above; with it on, the "full" synthesis here would finish inside any
  // deadline and nothing would degrade. Off, this section's full synthesis
  // costs what the measured cold_s cost.
  dcfg.synthesis.use_solve_cache = false;
  serve::Broker dbroker(dlibrary, dcfg);

  const double deadline_s = 0.05;
  serve::ServeRequest deadline_request = request;
  deadline_request.deadline_seconds = deadline_s;
  util::Stopwatch fallback_clock;
  const serve::ServeResponse degraded = dbroker.handle(deadline_request);
  const double fallback_elapsed = fallback_clock.elapsed_seconds();
  if (!degraded.degraded || degraded.hit) {
    std::fprintf(stderr, "FAIL: deadline request was not served degraded (degraded=%d hit=%d)\n",
                 degraded.degraded, degraded.hit);
    return 1;
  }
  // Latency the fallback itself cost, beyond the deadline the caller chose.
  const double fallback_s = std::max(fallback_elapsed - deadline_s, 1e-9);

  util::Stopwatch upgrade_clock;
  bool upgraded = false;
  while (upgrade_clock.elapsed_seconds() < cold_s * 20.0 + 60.0) {
    if (dbroker.stats().upgrades >= 1) {
      upgraded = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const double upgrade_wait_s = upgrade_clock.elapsed_seconds();
  const serve::ServeResponse after = dbroker.handle(request);
  const bool upgraded_hit = after.hit && !after.degraded;

  const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
  const double fallback_speedup = fallback_s > 0 ? cold_s / fallback_s : 0.0;
  const double hit_rate = 100.0 * iso_hits / iso_requests;

  char line[1024];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"serve_warm_hit_multirail2x8_alltoall\",\"bytes\":%llu,"
                "\"cold_s\":%.6f,\"warm_hit_s\":%.6f,\"speedup\":%.1f,"
                "\"iso_requests\":%d,\"iso_hits\":%d,\"iso_hit_rate\":%.1f,"
                "\"degraded\":{\"deadline_s\":%.3f,\"fallback_s\":%.6f,"
                "\"fallback_speedup\":%.1f,\"upgrade_wait_s\":%.3f,"
                "\"upgraded_hit\":%s}}",
                static_cast<unsigned long long>(bytes), cold_s, warm_s, speedup,
                iso_requests, iso_hits, hit_rate, deadline_s, fallback_s, fallback_speedup,
                upgrade_wait_s, upgraded_hit ? "true" : "false");
  benchutil::emit_json("serve", line);

  // ---- Gates (acceptance criteria) ----
  if (iso_hits != iso_requests) {
    std::fprintf(stderr, "FAIL: only %d/%d isomorphic re-requests hit the library\n",
                 iso_hits, iso_requests);
    return 1;
  }
  if (speedup < 100.0) {
    std::fprintf(stderr, "FAIL: warm hit only %.1fx faster than cold synthesis\n", speedup);
    return 1;
  }
  if (fallback_speedup < 20.0) {
    std::fprintf(stderr, "FAIL: degraded fallback only %.1fx faster than cold synthesis\n",
                 fallback_speedup);
    return 1;
  }
  if (!upgraded || !upgraded_hit) {
    std::fprintf(stderr,
                 "FAIL: background upgrade never landed (upgraded=%d hit=%d degraded=%d)\n",
                 upgraded, after.hit, after.degraded);
    return 1;
  }
  return 0;
}
