// Table 5 reproduction: synthesis time (min/max/mean seconds) and speedup for
// six scenarios. TECCL runs under a bounded per-point solver budget (standing
// in for the paper's 10 h timeout); at 512 GPUs it times out with no output.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/teccl.h"
#include "bench_util.h"
#include "core/synthesizer.h"
#include "topo/builders.h"
#include "util/stopwatch.h"

using namespace syccl;

namespace {

struct Scenario {
  const char* name;
  topo::Topology topo;
  int n;
  coll::CollKind kind;
  bool run_teccl;
};

struct Stats {
  double min = 1e300, max = 0, sum = 0;
  int count = 0;
  void add(double v) {
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
    ++count;
  }
  double mean() const { return count > 0 ? sum / count : 0; }
};

}  // namespace

int main() {
  benchutil::header("Table 5: synthesis time (s), min/max/mean per scenario");
  std::vector<Scenario> scenarios;
  scenarios.push_back({"16 A100, AG", topo::build_a100_testbed(16), 16,
                       coll::CollKind::AllGather, true});
  scenarios.push_back({"16 A100, A2A", topo::build_a100_testbed(16), 16,
                       coll::CollKind::AllToAll, true});
  scenarios.push_back({"32 A100, AG", topo::build_a100_testbed(32), 32,
                       coll::CollKind::AllGather, true});
  scenarios.push_back({"64 H800, AG", topo::build_h800_cluster(8), 64,
                       coll::CollKind::AllGather, true});
  scenarios.push_back({"64 H800, A2A", topo::build_h800_cluster(8), 64,
                       coll::CollKind::AllToAll, true});
  scenarios.push_back({"512 H800, AG", topo::build_h800_cluster(64), 512,
                       coll::CollKind::AllGather, false});

  const double budget = benchutil::teccl_budget(8.0);
  std::printf("%-14s %26s %26s %10s\n", "Scenario", "TECCL min/max/mean (s)",
              "SyCCL min/max/mean (s)", "speedup");

  for (auto& sc : scenarios) {
    const topo::TopologyGroups groups = topo::extract_groups(sc.topo);
    core::SynthesisConfig cfg;
    if (sc.n >= 256) cfg.sim.max_blocks = 2;
    core::Synthesizer synth(sc.topo, cfg);
    Stats teccl_s, syccl_s;
    bool teccl_timeout = !sc.run_teccl;

    const auto sizes =
        benchutil::size_sweep(1 << 20, sc.n >= 256 ? (benchutil::fast_mode() ? 64ull << 20
                                                                             : 1ull << 30)
                                                   : 1ull << 30);
    for (const auto size : sizes) {
      const coll::Collective c = sc.kind == coll::CollKind::AllGather
                                     ? coll::make_allgather(sc.n, size)
                                     : coll::make_alltoall(sc.n, size);
      if (sc.run_teccl) {
        baselines::TecclOptions topts;
        topts.time_budget_s = budget;
        const auto r = baselines::teccl_synthesize(c, groups, topts);
        teccl_s.add(r.synth_seconds);
        teccl_timeout = teccl_timeout || r.timed_out;
      }
      util::Stopwatch sw;
      (void)synth.synthesize(c);
      syccl_s.add(sw.elapsed_seconds());
    }

    if (sc.run_teccl) {
      std::printf("%-14s %8.2f/%8.2f/%8.2f %8.2f/%8.2f/%8.2f %9.0fx\n", sc.name, teccl_s.min,
                  teccl_s.max, teccl_s.mean(), syccl_s.min, syccl_s.max, syccl_s.mean(),
                  teccl_s.mean() / std::max(1e-9, syccl_s.mean()));
    } else {
      std::printf("%-14s %26s %8.2f/%8.2f/%8.2f %10s\n", sc.name, "Time Out", syccl_s.min,
                  syccl_s.max, syccl_s.mean(), "N/A");
    }
  }
  std::printf("(TECCL per-point budget %.0f s; the paper used a 10 h cap — absolute times do "
              "not transfer, orders of magnitude do)\n", budget);
  return 0;
}
