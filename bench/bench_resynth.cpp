// Incremental re-synthesis bench (BENCH_resynth.json): after a single
// rail-link degradation on a 2×8 multi-rail fabric, re-synthesizing against
// the warm solve cache must be ≥10× faster than a cold full synthesis on the
// mutated topology AND produce a byte-identical schedule.
//
// The degradation touches one size-2 rail group; the expensive size-8
// NVLink classes are untouched, so the incremental pass serves them from the
// cache (position-canonical keys + modal-β bandwidth shares keep the keys
// stable) and only re-solves the degraded group's classes.
//
// Registered under the ctest configuration/label `perf` (`ctest -C perf`).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/resynthesize.h"
#include "core/synthesizer.h"
#include "solver/solve_cache.h"
#include "topo/builders.h"
#include "topo/mutate.h"
#include "util/stopwatch.h"

using namespace syccl;

namespace {

core::SynthesisConfig bench_config() {
  core::SynthesisConfig cfg;
  // Small sketch budgets keep the (shared) search/replication overhead low;
  // the MILP class solves dominate the cold run, which is exactly the work
  // the incremental pass avoids.
  cfg.sketch.search.max_sketches = 16;
  cfg.sketch.max_prototypes = 2;
  cfg.sketch.combine.max_outputs = 4;
  // Byte-identity requires deterministic solves: termination must come from
  // the node/iteration limits, never the wall clock (a time-truncated B&B
  // incumbent depends on machine load). The budgets admit the ~3.4k-binary
  // size-8 NVLink all-to-all class into the B&B instead of the greedy
  // fallback; three explored nodes put the cold solve in the seconds range.
  for (auto* opts : {&cfg.coarse_solver, &cfg.fine_solver}) {
    opts->max_binaries = 4000;
    opts->node_limit = 3;
    opts->time_limit_s = 1e6;
  }
  if (const char* t = std::getenv("SYCCL_SYNTH_THREADS")) cfg.num_threads = std::atoi(t);
  return cfg;
}

double median_of_three(double a, double b, double c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  return a > b ? a : b;
}

bool identical_schedules(const sim::Schedule& a, const sim::Schedule& b) {
  if (a.pieces.size() != b.pieces.size() || a.ops.size() != b.ops.size()) return false;
  for (std::size_t i = 0; i < a.pieces.size(); ++i) {
    const auto& p = a.pieces[i];
    const auto& q = b.pieces[i];
    if (p.chunk != q.chunk || p.bytes != q.bytes || p.origin != q.origin ||
        p.reduce != q.reduce || p.contributors != q.contributors) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    const auto& p = a.ops[i];
    const auto& q = b.ops[i];
    if (p.piece != q.piece || p.src != q.src || p.dst != q.dst || p.dim != q.dim ||
        p.phase != q.phase) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  topo::MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 8;
  spec.with_spine = false;
  const topo::Topology base = topo::build_multi_rail(spec);
  const auto coll = coll::make_alltoall(16, 16 << 20);
  const core::SynthesisConfig cfg = bench_config();

  // One rail NIC's uplink degrades 8×: only the rail-0 group (2 ranks) is
  // affected; both size-8 NVLink groups and the other 7 rail groups keep
  // their canonical keys.
  const topo::MutationResult mutation =
      topo::degrade_duplex(base, topo::node_by_name(base, "nic0.0"),
                           topo::node_by_name(base, "leaf0"), 1.0, 8.0);

  // Cold reference: cleared cache, full synthesis on the mutated topology.
  double cold[3];
  core::SynthesisResult cold_result;
  for (int i = 0; i < 3; ++i) {
    solver::SubScheduleCache::instance().clear();
    core::Synthesizer synth(mutation.topo, cfg);
    util::Stopwatch clock;
    cold_result = synth.synthesize(coll);
    cold[i] = clock.elapsed_seconds();
  }

  // Incremental: each iteration re-warms the cache with an (untimed) base
  // synthesis, then times only the re-synthesis after the degradation.
  double warm[3];
  core::ResynthesisReport warm_report;
  for (int i = 0; i < 3; ++i) {
    solver::SubScheduleCache::instance().clear();
    core::Synthesizer prev_synth(base, cfg);
    const core::SynthesisResult previous = prev_synth.synthesize(coll);
    util::Stopwatch clock;
    warm_report = core::resynthesize(base, mutation, coll, cfg, &previous);
    warm[i] = clock.elapsed_seconds();
  }

  const double cold_s = median_of_three(cold[0], cold[1], cold[2]);
  const double warm_s = median_of_three(warm[0], warm[1], warm[2]);
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
  const bool byte_identical = identical_schedules(warm_report.result.schedule,
                                                  cold_result.schedule) &&
                              warm_report.result.predicted_time == cold_result.predicted_time;

  char line[1024];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"resynth_single_rail_degradation_2x8\",\"bytes\":%llu,"
      "\"cold_s\":%.6f,\"warm_s\":%.6f,\"speedup\":%.2f,"
      "\"affected_groups\":%d,\"total_groups\":%d,"
      "\"classes_reused\":%d,\"classes_resolved\":%d,"
      "\"cold_solver_calls\":%d,\"warm_solver_calls\":%d,"
      "\"byte_identical\":%s}",
      static_cast<unsigned long long>(coll.total_bytes()), cold_s, warm_s, speedup,
      warm_report.affected_groups, warm_report.total_groups, warm_report.classes_reused,
      warm_report.classes_resolved, cold_result.breakdown.num_solver_calls,
      warm_report.result.breakdown.num_solver_calls, byte_identical ? "true" : "false");
  benchutil::emit_json("resynth", line);

  // ---- Gates (acceptance criteria) ----
  if (!byte_identical) {
    std::fprintf(stderr, "FAIL: incremental re-synthesis diverges from cold synthesis\n");
    return 1;
  }
  if (warm_report.result.breakdown.num_solver_calls >=
      cold_result.breakdown.num_solver_calls) {
    std::fprintf(stderr, "FAIL: incremental pass re-solved %d classes (cold solved %d)\n",
                 warm_report.result.breakdown.num_solver_calls,
                 cold_result.breakdown.num_solver_calls);
    return 1;
  }
  if (warm_report.classes_reused <= 0) {
    std::fprintf(stderr, "FAIL: incremental pass reused no cached classes\n");
    return 1;
  }
  if (speedup < 10.0) {
    std::fprintf(stderr, "FAIL: incremental re-synthesis only %.2fx faster than cold\n",
                 speedup);
    return 1;
  }
  return 0;
}
