// Figures 21–22 reproduction: SyCCL vs expert hand-crafted schedules
// (Appendix C). "Crafted" is the best of {ring, direct, hierarchical};
// "Improved" adds the two-rail improved hierarchical schedule that the
// winning SyCCL sketch inspired (Fig. 22, rail topologies only).
#include <algorithm>
#include <cstdio>

#include "baselines/crafted.h"
#include "baselines/nccl.h"
#include "bench_util.h"
#include "core/synthesizer.h"
#include "sim/simulator.h"
#include "topo/builders.h"

using namespace syccl;

namespace {

void run_panel(const char* title, const topo::Topology& topo, int n, bool rails) {
  benchutil::header(title);
  const topo::TopologyGroups groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);
  core::Synthesizer synth(const_cast<const topo::Topology&>(topo));

  std::printf("%-8s %12s %12s %12s %12s %10s\n", "size", "NCCL GB/s", "Crafted GB/s",
              rails ? "Improved" : "-", "SyCCL GB/s", "vs Craftd");
  for (const auto size : benchutil::size_sweep(64 << 10)) {
    const coll::Collective ag = coll::make_allgather(n, size);
    const double t_nccl = sim.time_collective(baselines::nccl_ring_allgather(ag, groups), ag);

    double t_crafted = 1e300;
    for (auto& s : baselines::crafted_allgather_suite(ag, groups, false)) {
      t_crafted = std::min(t_crafted, sim.time_collective(s, ag));
    }
    double t_improved = -1.0;
    if (rails) {
      // Fig. 22: the improved two-rail schedule on its own (issue order
      // tuned, as the paper's hand-crafted orders are contention-aware).
      auto imp = baselines::crafted_improved_hierarchical_allgather(ag, groups);
      t_improved = sim.tune_issue_order(imp, ag);
    }
    const double t_syccl = synth.synthesize(ag).predicted_time;

    std::printf("%-8s %12.1f %12.1f %12.1f %12.1f %9.2fx\n",
                benchutil::human_size(size).c_str(), benchutil::gbps(ag, t_nccl),
                benchutil::gbps(ag, t_crafted),
                t_improved > 0 ? benchutil::gbps(ag, t_improved) : 0.0,
                benchutil::gbps(ag, t_syccl), t_crafted / t_syccl);
  }
}

}  // namespace

int main() {
  const topo::Topology a100 = topo::build_a100_testbed(16);
  run_panel("Fig 21(a): AllGather on 16 A100 (crafted vs SyCCL)", a100, 16, false);
  const topo::Topology h800 = topo::build_h800_cluster(8);
  run_panel("Fig 21(b)+22: AllGather on 64 H800 (crafted/improved vs SyCCL)", h800, 64, true);
  return 0;
}
