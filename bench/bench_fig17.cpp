// Figure 17 reproduction: impact of the synthesis policy, on the scaled-down
// microbenchmark cluster (§7.4: H800 links, 6 servers × 4 GPUs).
//   (a) pruning #1 (isomorphism) and #2 (consistency) on/off
//   (b) AlltoAll stage limit 3/5/10
//   (c) epoch knob E2 ∈ {0.1, 0.2, 1.0}: max per-demand solve time + busbw
#include <cstdio>

#include "bench_util.h"
#include "core/synthesizer.h"
#include "topo/builders.h"
#include "util/stopwatch.h"

using namespace syccl;

namespace {

const std::vector<std::uint64_t>& sweep() {
  static const std::vector<std::uint64_t> sizes =
      benchutil::size_sweep(64 << 10, benchutil::fast_mode() ? (64ull << 20) : (1ull << 30));
  return sizes;
}

void panel_a() {
  benchutil::header("Fig 17(a): pruning #1/#2 ablation (24-GPU microbench, AllGather)");
  const topo::Topology topo = topo::build_microbench_cluster();
  std::printf("%-8s", "size");
  const char* labels[] = {"w/o1,w/o2", "w/o1,w/2", "w/1,w/o2", "w/1,w/2"};
  for (const char* l : labels) std::printf("  %9s tot(s)/GBps", l);
  std::printf("\n");

  for (const auto size : sweep()) {
    std::printf("%-8s", benchutil::human_size(size).c_str());
    for (int mode = 0; mode < 4; ++mode) {
      core::SynthesisConfig cfg;
      cfg.sketch.search.prune_isomorphic = (mode & 2) != 0;
      cfg.sketch.search.prune_consistency = (mode & 1) != 0;
      // With pruning off the enumeration is exhaustive (the paper's "one may
      // disable pruning… at the cost of higher synthesis overhead").
      cfg.sketch.search.exhaustive_counts = !cfg.sketch.search.prune_consistency;
      cfg.sketch.search.max_sketches = cfg.sketch.search.prune_isomorphic ? 64 : 4096;
      cfg.sketch.search.node_budget = 3000000;
      core::Synthesizer synth(topo, cfg);
      const coll::Collective ag = coll::make_allgather(24, size);
      util::Stopwatch sw;
      const auto r = synth.synthesize(ag);
      std::printf("  %10.2f/%-10.1f", sw.elapsed_seconds(),
                  benchutil::gbps(ag, r.predicted_time));
    }
    std::printf("\n");
  }
  std::printf("(note: §5.3 isomorphism-class dedup at the solver layer subsumes most of "
              "pruning #1's benefit in this implementation — see EXPERIMENTS.md)\n");
}

void panel_b() {
  benchutil::header("Fig 17(b): AlltoAll stage-limit ablation (3/5/10 stages)");
  const topo::Topology topo = topo::build_microbench_cluster();
  std::printf("%-8s %14s %14s %14s %12s %12s %12s\n", "size", "3-stage(s)", "5-stage(s)",
              "10-stage(s)", "3 GBps", "5 GBps", "10 GBps");
  for (const auto size : sweep()) {
    double times[3], bw[3];
    int i = 0;
    for (const int stages : {3, 5, 10}) {
      core::SynthesisConfig cfg;
      cfg.sketch.search.max_stages = stages;
      // Give the search room so the stage limit is what binds.
      cfg.sketch.search.max_sketches = 128;
      cfg.sketch.search.node_budget = 2000000;
      core::Synthesizer synth(topo, cfg);
      const coll::Collective a2a = coll::make_alltoall(24, size);
      util::Stopwatch sw;
      const auto r = synth.synthesize(a2a);
      times[i] = sw.elapsed_seconds();
      bw[i] = benchutil::gbps(a2a, r.predicted_time);
      ++i;
    }
    std::printf("%-8s %14.3f %14.3f %14.3f %12.1f %12.1f %12.1f\n",
                benchutil::human_size(size).c_str(), times[0], times[1], times[2], bw[0], bw[1],
                bw[2]);
  }
}

void panel_c() {
  benchutil::header("Fig 17(c): epoch knob E2 ablation (0.1 / 0.2 / 1.0)");
  const topo::Topology topo = topo::build_microbench_cluster();
  std::printf("%-8s %16s %16s %16s %10s %10s %10s\n", "size", "maxsolve@0.1(s)",
              "maxsolve@0.2(s)", "maxsolve@1.0(s)", "GBps@0.1", "GBps@0.2", "GBps@1.0");
  for (const auto size : sweep()) {
    double solve[3], bw[3];
    int i = 0;
    for (const double e2 : {0.1, 0.2, 1.0}) {
      core::SynthesisConfig cfg;
      cfg.E2 = e2;
      core::Synthesizer synth(topo, cfg);
      const coll::Collective ag = coll::make_allgather(24, size);
      const auto r = synth.synthesize(ag);
      solve[i] = r.breakdown.max_solve_s;
      bw[i] = benchutil::gbps(ag, r.predicted_time);
      ++i;
    }
    std::printf("%-8s %16.4f %16.4f %16.4f %10.1f %10.1f %10.1f\n",
                benchutil::human_size(size).c_str(), solve[0], solve[1], solve[2], bw[0], bw[1],
                bw[2]);
  }
}

}  // namespace

int main() {
  panel_a();
  panel_b();
  panel_c();
  return 0;
}
