// Figure 14 reproduction: schedule performance (busbw) on the A100 testbed.
//   (a) AllGather, 16 GPUs      (b) AllGather, 32 GPUs
//   (c) ReduceScatter, 16 GPUs  (d) AlltoAll, 16 GPUs
// Series: TECCL, NCCL, SyCCL over data sizes 1KB–4GB.
#include <cstdio>

#include "baselines/nccl.h"
#include "baselines/teccl.h"
#include "bench_util.h"
#include "core/synthesizer.h"
#include "sim/simulator.h"
#include "topo/builders.h"

using namespace syccl;

namespace {

void run_panel(const char* title, int num_gpus, coll::CollKind kind) {
  benchutil::header(title);
  const topo::Topology topo = topo::build_a100_testbed(num_gpus);
  const topo::TopologyGroups groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);
  core::Synthesizer synth(topo);
  baselines::TecclOptions teccl_opts;
  teccl_opts.time_budget_s = benchutil::teccl_budget(3.0);

  std::printf("%-8s %12s %12s %12s %10s %10s\n", "size", "TECCL GB/s", "NCCL GB/s",
              "SyCCL GB/s", "vs NCCL", "vs TECCL");
  for (const auto size : benchutil::size_sweep()) {
    coll::Collective c = kind == coll::CollKind::AllGather ? coll::make_allgather(num_gpus, size)
                         : kind == coll::CollKind::ReduceScatter
                             ? coll::make_reduce_scatter(num_gpus, size)
                             : coll::make_alltoall(num_gpus, size);

    const double t_nccl = sim.time_collective(baselines::nccl_schedule(c, groups), c);
    const auto teccl = baselines::teccl_synthesize(c, groups, teccl_opts);
    const double t_syccl = synth.synthesize(c).predicted_time;

    std::printf("%-8s %12.1f %12.1f %12.1f %9.2fx %9.2fx\n",
                benchutil::human_size(size).c_str(),
                teccl.timed_out ? 0.0 : benchutil::gbps(c, teccl.predicted_time),
                benchutil::gbps(c, t_nccl), benchutil::gbps(c, t_syccl), t_nccl / t_syccl,
                teccl.timed_out ? 0.0 : teccl.predicted_time / t_syccl);
  }
}

}  // namespace

int main() {
  run_panel("Fig 14(a): AllGather, 16 A100", 16, coll::CollKind::AllGather);
  run_panel("Fig 14(b): AllGather, 32 A100", 32, coll::CollKind::AllGather);
  run_panel("Fig 14(c): ReduceScatter, 16 A100", 16, coll::CollKind::ReduceScatter);
  run_panel("Fig 14(d): AlltoAll, 16 A100", 16, coll::CollKind::AllToAll);
  return 0;
}
