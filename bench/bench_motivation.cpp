// §2.1 motivation numbers (Fig. 2): NCCL's fixed ring on a production-style
// H800 pair keeps a fixed intra/inter traffic ratio (7:1 at 8 GPUs per
// server) that mismatches the 3.6:1 hardware bandwidth ratio — the network
// sits half idle while NVLink saturates (the paper reports 10.6% average
// bandwidth waste) — and pays |V|−1 hops of latency at small sizes (4×).
#include <algorithm>
#include <cstdio>

#include "baselines/nccl.h"
#include "bench_util.h"
#include "core/synthesizer.h"
#include "runtime/validate.h"
#include "sim/simulator.h"
#include "topo/builders.h"

using namespace syccl;

int main() {
  benchutil::header("Motivation (Fig 2 / §2.1): NCCL fixed ring on 2 H800 servers");
  const topo::Topology topo = topo::build_h800_cluster(2);
  const topo::TopologyGroups groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);
  core::Synthesizer synth(topo);

  // Large size: the ring's structural traffic ratio vs the hardware ratio.
  {
    const coll::Collective ag = coll::make_allgather(16, 1ull << 30);
    const auto ring = baselines::nccl_ring_allgather(ag, groups);
    const double t_ring = sim.time_collective(ring, ag);
    const auto rep = runtime::validate_schedule(ring, ag, groups);
    const double nv = rep.traffic_per_dim[0];
    double net = 0.0;
    for (std::size_t d = 1; d < rep.traffic_per_dim.size(); ++d) net += rep.traffic_per_dim[d];
    std::printf("1 GB AllGather, NCCL ring: %.2f ms (%.1f GB/s)\n", t_ring * 1e3,
                benchutil::gbps(ag, t_ring));
    std::printf("  ring traffic ratio NVLink:network = %.1f:1 (hardware bandwidth ratio "
                "3.6:1)\n", nv / std::max(net, 1.0));
    // Busy fractions: per-GPU NVLink vs per-NIC occupancy over the run.
    const double nv_busy = (nv / 16.0) / 180e9;   // per GPU
    const double net_busy = (net / 16.0) / 50e9;  // per NIC
    std::printf("  NVLink busy %.0f%% of the run; network busy %.0f%% → %.0f%% of network "
                "bandwidth idle (paper: 48.5%% idle, 10.6%% average waste)\n",
                100 * nv_busy / t_ring, 100 * net_busy / t_ring,
                100 * (1 - net_busy / t_ring));
  }

  // Medium size: what synthesis recovers when neither pure latency nor pure
  // bandwidth dominates.
  {
    const coll::Collective ag = coll::make_allgather(16, 1 << 20);
    const double t_ring =
        sim.time_collective(baselines::nccl_ring_allgather(ag, groups), ag);
    const double t_syccl = synth.synthesize(ag).predicted_time;
    std::printf("1 MB AllGather: NCCL ring %.1f GB/s, synthesized %.1f GB/s (%.1fx)\n",
                benchutil::gbps(ag, t_ring), benchutil::gbps(ag, t_syccl), t_ring / t_syccl);
  }

  // Small size: |V|−1 ring hops vs a latency-optimal schedule.
  {
    const coll::Collective ag = coll::make_allgather(16, 64 << 10);
    const double t_ring =
        sim.time_collective(baselines::nccl_ring_allgather(ag, groups), ag);
    const double t_syccl = synth.synthesize(ag).predicted_time;
    std::printf("64 KB AllGather: NCCL ring %.1f us (15 hops), synthesized %.1f us → %.1fx "
                "latency reduction (paper: up to 4x)\n",
                t_ring * 1e6, t_syccl * 1e6, t_ring / t_syccl);
  }
  return 0;
}
