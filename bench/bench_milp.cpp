// Perf-trajectory bench for warm-started node LP re-solves in the MILP
// branch and bound.
//
// Representative sub-demand encodings (allgather/broadcast on single-server
// groups, the workloads solve_sub_demand actually sees) are built through
// solver::encode_sub_demand_milp. For each, a branching-like sequence of
// bound perturbations (dive: fix random binaries, backtrack periodically) is
// re-solved two ways over the identical sequence:
//
//   cold — lp::solve() from scratch per node (the pre-warm-start behaviour),
//   warm — one lp::SimplexSolver re-entered via dual simplex per node.
//
// The node re-solve throughput ratio cold_s/warm_s is the tentpole metric;
// a full branch-and-bound run with use_warm_start on/off is also reported.
//
// A second section replays congested sub-demands derived from the pinned
// fuzz corpus (tests/corpus/seeds.txt, path as argv[1]) through
// solve_sub_demand with multi-commodity flow bounds on and off. The winning
// schedules must be byte-identical either way; on the congested half of the
// corpus (most nodes explored without flow bounds) the median
// nodes-explored reduction must be ≥2×, or the median wall-time reduction
// ≥1.5×. A final ungated section reports the optimality gap of full
// synthesis against baselines::flow_lower_bound on paper topologies.
//
// Output: one JSON line on stdout and in BENCH_milp.json. Registered under
// the ctest configuration/label `perf`; the gate fails unless the median
// warm throughput is ≥3× cold and the flow section passes.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/flow_bound.h"
#include "bench_util.h"
#include "coll/collective.h"
#include "core/synthesizer.h"
#include "lp/simplex.h"
#include "lp/simplex_solver.h"
#include "milp/branch_and_bound.h"
#include "solver/epoch_model.h"
#include "solver/milp_scheduler.h"
#include "topo/builders.h"
#include "topo/groups.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace syccl;

namespace {

solver::SubDemand broadcast_demand(const topo::GroupTopology& g, double bytes) {
  solver::SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  solver::DemandPiece p;
  p.id = 0;
  p.srcs = {0};
  for (int i = 1; i < g.size(); ++i) p.dsts.push_back(i);
  d.pieces.push_back(std::move(p));
  return d;
}

solver::SubDemand allgather_demand(const topo::GroupTopology& g, double bytes) {
  solver::SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  for (int r = 0; r < g.size(); ++r) {
    solver::DemandPiece p;
    p.id = r;
    p.srcs = {r};
    for (int i = 0; i < g.size(); ++i) {
      if (i != r) p.dsts.push_back(i);
    }
    d.pieces.push_back(std::move(p));
  }
  return d;
}

/// A branching-like sequence of bound boxes over the encoding's binaries:
/// each step fixes one more random binary (diving); every eighth step
/// backtracks to the root box. Deterministic from the seed.
std::vector<std::pair<std::vector<double>, std::vector<double>>> node_sequence(
    const lp::Problem& p, const std::vector<bool>& is_integer, int count, std::uint64_t seed) {
  std::vector<int> binaries;
  for (int v = 0; v < p.num_vars; ++v) {
    if (is_integer[static_cast<std::size_t>(v)]) binaries.push_back(v);
  }
  util::Rng rng(seed);
  std::vector<std::pair<std::vector<double>, std::vector<double>>> seq;
  std::vector<double> lo = p.lower, hi = p.upper;
  for (int i = 0; i < count; ++i) {
    if (i % 8 == 0) {
      lo = p.lower;
      hi = p.upper;
    }
    const std::size_t v = static_cast<std::size_t>(
        binaries[static_cast<std::size_t>(rng.next_below(binaries.size()))]);
    if (rng.next_below(2) == 0) {
      hi[v] = lo[v];  // fix down
    } else {
      lo[v] = hi[v];  // fix up
    }
    seq.push_back({lo, hi});
  }
  return seq;
}

struct CaseResult {
  std::string name;
  int vars = 0;
  int rows = 0;
  double cold_s = 0.0;
  double warm_s = 0.0;
  double ratio = 0.0;
  long warm_fallbacks = 0;
  int mismatches = 0;      ///< status disagreements (must be 0)
  long bb_nodes_cold = 0;  ///< full B&B, use_warm_start = false
  long bb_nodes_warm = 0;
  double bb_cold_s = 0.0;
  double bb_warm_s = 0.0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

CaseResult run_case(const std::string& name, const solver::SubDemandEncoding& enc,
                    int num_nodes) {
  CaseResult res;
  res.name = name;
  const lp::Problem& p = enc.problem.lp;
  res.vars = p.num_vars;
  res.rows = static_cast<int>(p.constraints.size());

  const auto seq = node_sequence(p, enc.problem.is_integer, num_nodes, 42);
  // Same per-node pivot budget the branch and bound uses (MilpOptions
  // default), so cold pathological nodes cost what they cost in-tree.
  constexpr long kNodeIters = 20000;

  // Statuses must agree node-for-node; collect once outside the timed loops.
  {
    lp::SimplexSolver solver(p);
    for (const auto& [lo, hi] : seq) {
      const lp::Solution warm = solver.resolve(lo, hi, kNodeIters);
      lp::Problem q = p;
      q.lower = lo;
      q.upper = hi;
      const lp::Solution cold = lp::solve(q, kNodeIters);
      // A cold IterationLimit is the reference giving up, not a verdict to
      // compare against (the warm path can legitimately out-prove it).
      if (cold.status == lp::Status::IterationLimit ||
          warm.status == lp::Status::IterationLimit) {
        continue;
      }
      if (warm.status != cold.status) {
        ++res.mismatches;
        if (std::getenv("SYCCL_BENCH_DEBUG") && res.mismatches <= 5) {
          std::fprintf(stderr, "mismatch: warm=%d obj=%.9g cold=%d obj=%.9g\n",
                       static_cast<int>(warm.status), warm.objective,
                       static_cast<int>(cold.status), cold.objective);
        }
      } else if (warm.status == lp::Status::Optimal &&
                 std::fabs(warm.objective - cold.objective) >
                     1e-6 * (1.0 + std::fabs(cold.objective))) {
        ++res.mismatches;
        if (std::getenv("SYCCL_BENCH_DEBUG") && res.mismatches <= 5) {
          std::fprintf(stderr, "obj mismatch: warm=%.9g cold=%.9g\n", warm.objective,
                       cold.objective);
        }
      }
    }
    res.warm_fallbacks = solver.stats().warm_fallbacks;
  }

  std::vector<double> cold_runs, warm_runs;
  for (int rep = 0; rep < 3; ++rep) {
    util::Stopwatch clock;
    for (const auto& [lo, hi] : seq) {
      lp::Problem q = p;
      q.lower = lo;
      q.upper = hi;
      (void)lp::solve(q, kNodeIters);
    }
    cold_runs.push_back(clock.elapsed_seconds());

    lp::SimplexSolver solver(p);
    clock.reset();
    for (const auto& [lo, hi] : seq) (void)solver.resolve(lo, hi, kNodeIters);
    warm_runs.push_back(clock.elapsed_seconds());
  }
  res.cold_s = median(cold_runs);
  res.warm_s = median(warm_runs);
  res.ratio = res.warm_s > 0 ? res.cold_s / res.warm_s : 0.0;

  // Full branch and bound, warm vs cold node LPs, same incumbent seed.
  milp::MilpOptions opts;
  opts.time_limit_s = 10.0;
  std::optional<std::vector<double>> inc;
  if (!enc.incumbent.empty()) inc = enc.incumbent;
  opts.use_warm_start = false;
  util::Stopwatch clock;
  const milp::MilpSolution cold_bb = milp::solve(enc.problem, opts, inc);
  res.bb_cold_s = clock.elapsed_seconds();
  res.bb_nodes_cold = cold_bb.nodes_explored;
  opts.use_warm_start = true;
  clock.reset();
  const milp::MilpSolution warm_bb = milp::solve(enc.problem, opts, inc);
  res.bb_warm_s = clock.elapsed_seconds();
  res.bb_nodes_warm = warm_bb.nodes_explored;
  return res;
}

std::vector<std::uint64_t> load_corpus(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string token;
    if (ls >> token) seeds.push_back(std::stoull(token, nullptr, 0));
  }
  return seeds;
}

/// One corpus-derived flow A/B case. Owns its topology so the SubDemand's
/// group pointer stays valid for the case's lifetime.
struct FlowCase {
  std::string name;
  topo::Topology topo;
  topo::TopologyGroups groups;
  solver::SubDemand demand;
  long nodes_on = 0;
  long nodes_off = 0;
  long flow_prunes = 0;
  double on_s = 0.0;
  double off_s = 0.0;
  bool identical = false;

  FlowCase(std::string n, int size)
      : name(std::move(n)),
        topo(topo::build_single_server(size, {1e-6, 1e9})),
        groups(topo::extract_groups(topo)) {
    demand.group = &groups.dims[0].groups[0];
  }
};

/// Expands a corpus seed into a congested alltoall-like sub-demand: every
/// rank sources a piece demanded by most others, occasionally merged with a
/// second source — the shape that makes the epoch MILP branch hardest.
/// `index` perturbs piece_bytes so no two cases collide in the solve cache.
std::unique_ptr<FlowCase> flow_case_of(std::uint64_t seed, std::size_t index) {
  util::Rng rng(seed);
  const int n = 4 + static_cast<int>(rng.next_below(2));  // 4–5 members
  auto fc = std::make_unique<FlowCase>("seed_" + std::to_string(seed), n);
  fc->demand.piece_bytes = static_cast<double>(1 << 20) + 4096.0 * static_cast<double>(index);
  for (int r = 0; r < n; ++r) {
    solver::DemandPiece p;
    p.srcs = {r};
    if (rng.next_below(4) == 0) p.srcs.push_back((r + 1) % n);
    for (int m = 0; m < n; ++m) {
      bool is_src = false;
      for (int s : p.srcs) is_src = is_src || s == m;
      if (!is_src && rng.next_below(4) != 0) p.dsts.push_back(m);
    }
    if (p.dsts.empty()) continue;
    // Ids are positional everywhere in the solver (core/subdemand.cpp keeps
    // id == index), so number after the empty-dst filter, not before.
    p.id = static_cast<int>(fc->demand.pieces.size());
    fc->demand.pieces.push_back(std::move(p));
  }
  return fc;
}

/// Solves the case with flow bounds off then on (generous limits so both
/// prove optimality) and byte-compares the winning schedules.
void run_flow_case(FlowCase& fc) {
  solver::MilpSchedulerOptions off;
  off.max_binaries = 4000;
  off.node_limit = 400000;
  off.time_limit_s = 30.0;
  off.use_flow_bounds = false;
  solver::MilpSchedulerOptions on = off;
  on.use_flow_bounds = true;

  util::Stopwatch clock;
  solver::SolveStats stats_off;
  const solver::SubSchedule b = solver::solve_sub_demand(fc.demand, off, &stats_off);
  fc.off_s = clock.elapsed_seconds();
  clock.reset();
  solver::SolveStats stats_on;
  const solver::SubSchedule a = solver::solve_sub_demand(fc.demand, on, &stats_on);
  fc.on_s = clock.elapsed_seconds();

  fc.nodes_on = stats_on.nodes_explored;
  fc.nodes_off = stats_off.nodes_explored;
  fc.flow_prunes = stats_on.flow_prunes;
  fc.identical =
      a.num_epochs == b.num_epochs && a.ops.size() == b.ops.size() &&
      (a.ops.empty() ||
       std::memcmp(a.ops.data(), b.ops.data(), a.ops.size() * sizeof(solver::SubOp)) == 0);
}

/// Optimality gap of end-to-end synthesis against the global flow lower
/// bound (reported, not gated: the gap measures synthesis quality and the
/// bound's own slack, not this bench's regression surface).
struct GapCase {
  std::string name;
  double predicted_s = 0.0;
  double flow_bound_s = 0.0;
  double gap = 0.0;  ///< predicted / bound − 1
};

GapCase run_gap_case(const std::string& name, const topo::Topology& topo,
                     const coll::Collective& coll) {
  GapCase g;
  g.name = name;
  core::SynthesisConfig cfg;
  cfg.coarse_solver.time_limit_s = 0.5;
  cfg.fine_solver.time_limit_s = 1.0;
  core::Synthesizer synth(topo, cfg);
  g.predicted_s = synth.synthesize(coll).predicted_time;
  g.flow_bound_s = baselines::flow_lower_bound(coll, topo).seconds;
  g.gap = g.flow_bound_s > 0.0 ? g.predicted_s / g.flow_bound_s - 1.0 : 0.0;
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  // Group sizes stay inside the production MILP gate (solve_sub_demand skips
  // encodings past max_binaries = 500), so these are the encodings the tree
  // search actually re-solves.
  topo::Topology t4 = topo::build_single_server(4, {1e-6, 1e9});
  topo::Topology t5 = topo::build_single_server(5, {1e-6, 1e9});
  topo::Topology t8 = topo::build_single_server(8, {1e-6, 1e9});
  const topo::TopologyGroups g4 = topo::extract_groups(t4);
  const topo::TopologyGroups g5 = topo::extract_groups(t5);
  const topo::TopologyGroups g8 = topo::extract_groups(t8);
  const double bytes = 1 << 20;  // βs ≫ α: bandwidth-dominated epochs

  struct Case {
    std::string name;
    solver::SubDemandEncoding enc;
    int num_nodes = 400;  // fewer for encodings with expensive cold solves
  };
  std::vector<Case> cases;
  cases.push_back({"allgather_4", solver::encode_sub_demand_milp(
                                      allgather_demand(g4.dims[0].groups[0], bytes), 1.0)});
  cases.push_back({"allgather_5", solver::encode_sub_demand_milp(
                                      allgather_demand(g5.dims[0].groups[0], bytes), 1.0),
                   150});
  cases.push_back({"broadcast_8", solver::encode_sub_demand_milp(
                                      broadcast_demand(g8.dims[0].groups[0], bytes), 1.0)});

  std::string json = "{\"bench\":\"milp_warm_resolve\",\"cases\":[";
  std::vector<double> ratios;
  int mismatches = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult r = run_case(cases[i].name, cases[i].enc, cases[i].num_nodes);
    ratios.push_back(r.ratio);
    mismatches += r.mismatches;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"vars\":%d,\"rows\":%d,\"cold_s\":%.6f,"
                  "\"warm_s\":%.6f,\"ratio\":%.2f,\"warm_fallbacks\":%ld,"
                  "\"mismatches\":%d,\"bb_nodes_cold\":%ld,\"bb_nodes_warm\":%ld,"
                  "\"bb_cold_s\":%.6f,\"bb_warm_s\":%.6f}",
                  i ? "," : "", r.name.c_str(), r.vars, r.rows, r.cold_s, r.warm_s, r.ratio,
                  r.warm_fallbacks, r.mismatches, r.bb_nodes_cold, r.bb_nodes_warm, r.bb_cold_s,
                  r.bb_warm_s);
    json += buf;
    std::printf("%s: %d vars, %d rows — cold %.4fs, warm %.4fs, ratio %.2fx "
                "(fallbacks %ld, mismatches %d); B&B %ld nodes %.3fs cold / %ld nodes %.3fs warm\n",
                r.name.c_str(), r.vars, r.rows, r.cold_s, r.warm_s, r.ratio, r.warm_fallbacks,
                r.mismatches, r.bb_nodes_cold, r.bb_cold_s, r.bb_nodes_warm, r.bb_warm_s);
  }
  const double med = median(ratios);
  char tail[128];
  std::snprintf(tail, sizeof(tail), "],\"median_ratio\":%.2f", med);
  json += tail;

  // Flow on/off corpus replay.
  const std::string corpus_path = argc > 1 ? argv[1] : "tests/corpus/seeds.txt";
  std::vector<std::uint64_t> seeds = load_corpus(corpus_path);
  if (seeds.empty()) {
    std::fprintf(stderr, "bench_milp: no corpus at %s, using fixed seeds\n", corpus_path.c_str());
    for (std::uint64_t s = 1; s <= 12; ++s) seeds.push_back(s);
  }
  if (seeds.size() > 16) seeds.resize(16);

  std::vector<std::unique_ptr<FlowCase>> flow_cases;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    auto fc = flow_case_of(seeds[i], i);
    if (fc->demand.pieces.empty()) continue;
    run_flow_case(*fc);
    std::printf("flow %s: %ld nodes off / %ld on (%ld flow prunes), "
                "%.3fs off / %.3fs on, identical=%d\n",
                fc->name.c_str(), fc->nodes_off, fc->nodes_on, fc->flow_prunes, fc->off_s,
                fc->on_s, fc->identical ? 1 : 0);
    flow_cases.push_back(std::move(fc));
  }

  // The congested half: the cases the plain branch and bound worked hardest
  // on. Ratios are medians over this subset (the ISSUE's gate population).
  std::vector<FlowCase*> congested;
  for (auto& fc : flow_cases) congested.push_back(fc.get());
  std::sort(congested.begin(), congested.end(),
            [](const FlowCase* a, const FlowCase* b) { return a->nodes_off > b->nodes_off; });
  if (congested.size() > 1) congested.resize((congested.size() + 1) / 2);

  bool flow_identical = true;
  std::vector<double> node_ratios, time_ratios;
  for (const auto& fc : flow_cases) flow_identical = flow_identical && fc->identical;
  for (const FlowCase* fc : congested) {
    node_ratios.push_back(static_cast<double>(fc->nodes_off + 1) /
                          static_cast<double>(fc->nodes_on + 1));
    time_ratios.push_back(fc->off_s > 0 && fc->on_s > 0 ? fc->off_s / fc->on_s : 1.0);
  }
  const double node_ratio = node_ratios.empty() ? 0.0 : median(node_ratios);
  const double time_ratio = time_ratios.empty() ? 0.0 : median(time_ratios);

  json += ",\"flow_cases\":[";
  for (std::size_t i = 0; i < flow_cases.size(); ++i) {
    const FlowCase& fc = *flow_cases[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"nodes_off\":%ld,\"nodes_on\":%ld,"
                  "\"flow_prunes\":%ld,\"off_s\":%.6f,\"on_s\":%.6f,\"identical\":%s}",
                  i ? "," : "", fc.name.c_str(), fc.nodes_off, fc.nodes_on, fc.flow_prunes,
                  fc.off_s, fc.on_s, fc.identical ? "true" : "false");
    json += buf;
  }
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "],\"flow_median_node_ratio\":%.2f,\"flow_median_time_ratio\":%.2f,"
                  "\"flow_identical\":%s",
                  node_ratio, time_ratio, flow_identical ? "true" : "false");
    json += buf;
  }

  // Optimality gap of full synthesis vs the global flow lower bound on the
  // paper's single-server testbed shapes (reported for EXPERIMENTS.md).
  std::vector<GapCase> gaps;
  gaps.push_back(run_gap_case("allgather_8", t8, coll::make_allgather(8, 1 << 22)));
  gaps.push_back(run_gap_case("allreduce_4", t4, coll::make_allreduce(4, 1 << 22)));
  json += ",\"flow_gap\":[";
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"predicted_s\":%.6g,\"flow_bound_s\":%.6g,"
                  "\"gap\":%.3f}",
                  i ? "," : "", gaps[i].name.c_str(), gaps[i].predicted_s, gaps[i].flow_bound_s,
                  gaps[i].gap);
    json += buf;
    std::printf("gap %s: predicted %.6gs vs flow bound %.6gs (gap %.1f%%)\n",
                gaps[i].name.c_str(), gaps[i].predicted_s, gaps[i].flow_bound_s,
                gaps[i].gap * 100.0);
  }
  json += "]}";
  benchutil::emit_json("milp", json);

  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %d warm/cold status mismatches\n", mismatches);
    return 1;
  }
  // Acceptance gate: warm node re-solve throughput ≥3× cold (median case).
  if (med < 3.0) {
    std::fprintf(stderr, "FAIL: median warm/cold re-solve ratio %.2fx < 3x\n", med);
    return 1;
  }
  // Flow gates: byte-identical schedules always; on the congested subset a
  // median ≥2× nodes-explored reduction (or ≥1.5× wall-time reduction).
  if (!flow_identical) {
    std::fprintf(stderr, "FAIL: flow on/off winning schedules differ\n");
    return 1;
  }
  if (node_ratio < 2.0 && time_ratio < 1.5) {
    std::fprintf(stderr,
                 "FAIL: flow bounds won neither gate — median node ratio %.2fx < 2x "
                 "and median time ratio %.2fx < 1.5x\n",
                 node_ratio, time_ratio);
    return 1;
  }
  return 0;
}
