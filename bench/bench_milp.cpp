// Perf-trajectory bench for warm-started node LP re-solves in the MILP
// branch and bound.
//
// Representative sub-demand encodings (allgather/broadcast on single-server
// groups, the workloads solve_sub_demand actually sees) are built through
// solver::encode_sub_demand_milp. For each, a branching-like sequence of
// bound perturbations (dive: fix random binaries, backtrack periodically) is
// re-solved two ways over the identical sequence:
//
//   cold — lp::solve() from scratch per node (the pre-warm-start behaviour),
//   warm — one lp::SimplexSolver re-entered via dual simplex per node.
//
// The node re-solve throughput ratio cold_s/warm_s is the tentpole metric;
// a full branch-and-bound run with use_warm_start on/off is also reported.
// Output: one JSON line on stdout and in BENCH_milp.json. Registered under
// the ctest configuration/label `perf`; the gate fails unless the median
// warm throughput is ≥3× cold.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lp/simplex.h"
#include "lp/simplex_solver.h"
#include "milp/branch_and_bound.h"
#include "solver/epoch_model.h"
#include "solver/milp_scheduler.h"
#include "topo/builders.h"
#include "topo/groups.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace syccl;

namespace {

solver::SubDemand broadcast_demand(const topo::GroupTopology& g, double bytes) {
  solver::SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  solver::DemandPiece p;
  p.id = 0;
  p.srcs = {0};
  for (int i = 1; i < g.size(); ++i) p.dsts.push_back(i);
  d.pieces.push_back(std::move(p));
  return d;
}

solver::SubDemand allgather_demand(const topo::GroupTopology& g, double bytes) {
  solver::SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  for (int r = 0; r < g.size(); ++r) {
    solver::DemandPiece p;
    p.id = r;
    p.srcs = {r};
    for (int i = 0; i < g.size(); ++i) {
      if (i != r) p.dsts.push_back(i);
    }
    d.pieces.push_back(std::move(p));
  }
  return d;
}

/// A branching-like sequence of bound boxes over the encoding's binaries:
/// each step fixes one more random binary (diving); every eighth step
/// backtracks to the root box. Deterministic from the seed.
std::vector<std::pair<std::vector<double>, std::vector<double>>> node_sequence(
    const lp::Problem& p, const std::vector<bool>& is_integer, int count, std::uint64_t seed) {
  std::vector<int> binaries;
  for (int v = 0; v < p.num_vars; ++v) {
    if (is_integer[static_cast<std::size_t>(v)]) binaries.push_back(v);
  }
  util::Rng rng(seed);
  std::vector<std::pair<std::vector<double>, std::vector<double>>> seq;
  std::vector<double> lo = p.lower, hi = p.upper;
  for (int i = 0; i < count; ++i) {
    if (i % 8 == 0) {
      lo = p.lower;
      hi = p.upper;
    }
    const std::size_t v = static_cast<std::size_t>(
        binaries[static_cast<std::size_t>(rng.next_below(binaries.size()))]);
    if (rng.next_below(2) == 0) {
      hi[v] = lo[v];  // fix down
    } else {
      lo[v] = hi[v];  // fix up
    }
    seq.push_back({lo, hi});
  }
  return seq;
}

struct CaseResult {
  std::string name;
  int vars = 0;
  int rows = 0;
  double cold_s = 0.0;
  double warm_s = 0.0;
  double ratio = 0.0;
  long warm_fallbacks = 0;
  int mismatches = 0;      ///< status disagreements (must be 0)
  long bb_nodes_cold = 0;  ///< full B&B, use_warm_start = false
  long bb_nodes_warm = 0;
  double bb_cold_s = 0.0;
  double bb_warm_s = 0.0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

CaseResult run_case(const std::string& name, const solver::SubDemandEncoding& enc,
                    int num_nodes) {
  CaseResult res;
  res.name = name;
  const lp::Problem& p = enc.problem.lp;
  res.vars = p.num_vars;
  res.rows = static_cast<int>(p.constraints.size());

  const auto seq = node_sequence(p, enc.problem.is_integer, num_nodes, 42);
  // Same per-node pivot budget the branch and bound uses (MilpOptions
  // default), so cold pathological nodes cost what they cost in-tree.
  constexpr long kNodeIters = 20000;

  // Statuses must agree node-for-node; collect once outside the timed loops.
  {
    lp::SimplexSolver solver(p);
    for (const auto& [lo, hi] : seq) {
      const lp::Solution warm = solver.resolve(lo, hi, kNodeIters);
      lp::Problem q = p;
      q.lower = lo;
      q.upper = hi;
      const lp::Solution cold = lp::solve(q, kNodeIters);
      // A cold IterationLimit is the reference giving up, not a verdict to
      // compare against (the warm path can legitimately out-prove it).
      if (cold.status == lp::Status::IterationLimit ||
          warm.status == lp::Status::IterationLimit) {
        continue;
      }
      if (warm.status != cold.status) {
        ++res.mismatches;
        if (std::getenv("SYCCL_BENCH_DEBUG") && res.mismatches <= 5) {
          std::fprintf(stderr, "mismatch: warm=%d obj=%.9g cold=%d obj=%.9g\n",
                       static_cast<int>(warm.status), warm.objective,
                       static_cast<int>(cold.status), cold.objective);
        }
      } else if (warm.status == lp::Status::Optimal &&
                 std::fabs(warm.objective - cold.objective) >
                     1e-6 * (1.0 + std::fabs(cold.objective))) {
        ++res.mismatches;
        if (std::getenv("SYCCL_BENCH_DEBUG") && res.mismatches <= 5) {
          std::fprintf(stderr, "obj mismatch: warm=%.9g cold=%.9g\n", warm.objective,
                       cold.objective);
        }
      }
    }
    res.warm_fallbacks = solver.stats().warm_fallbacks;
  }

  std::vector<double> cold_runs, warm_runs;
  for (int rep = 0; rep < 3; ++rep) {
    util::Stopwatch clock;
    for (const auto& [lo, hi] : seq) {
      lp::Problem q = p;
      q.lower = lo;
      q.upper = hi;
      (void)lp::solve(q, kNodeIters);
    }
    cold_runs.push_back(clock.elapsed_seconds());

    lp::SimplexSolver solver(p);
    clock.reset();
    for (const auto& [lo, hi] : seq) (void)solver.resolve(lo, hi, kNodeIters);
    warm_runs.push_back(clock.elapsed_seconds());
  }
  res.cold_s = median(cold_runs);
  res.warm_s = median(warm_runs);
  res.ratio = res.warm_s > 0 ? res.cold_s / res.warm_s : 0.0;

  // Full branch and bound, warm vs cold node LPs, same incumbent seed.
  milp::MilpOptions opts;
  opts.time_limit_s = 10.0;
  std::optional<std::vector<double>> inc;
  if (!enc.incumbent.empty()) inc = enc.incumbent;
  opts.use_warm_start = false;
  util::Stopwatch clock;
  const milp::MilpSolution cold_bb = milp::solve(enc.problem, opts, inc);
  res.bb_cold_s = clock.elapsed_seconds();
  res.bb_nodes_cold = cold_bb.nodes_explored;
  opts.use_warm_start = true;
  clock.reset();
  const milp::MilpSolution warm_bb = milp::solve(enc.problem, opts, inc);
  res.bb_warm_s = clock.elapsed_seconds();
  res.bb_nodes_warm = warm_bb.nodes_explored;
  return res;
}

}  // namespace

int main() {
  // Group sizes stay inside the production MILP gate (solve_sub_demand skips
  // encodings past max_binaries = 500), so these are the encodings the tree
  // search actually re-solves.
  topo::Topology t4 = topo::build_single_server(4, {1e-6, 1e9});
  topo::Topology t5 = topo::build_single_server(5, {1e-6, 1e9});
  topo::Topology t8 = topo::build_single_server(8, {1e-6, 1e9});
  const topo::TopologyGroups g4 = topo::extract_groups(t4);
  const topo::TopologyGroups g5 = topo::extract_groups(t5);
  const topo::TopologyGroups g8 = topo::extract_groups(t8);
  const double bytes = 1 << 20;  // βs ≫ α: bandwidth-dominated epochs

  struct Case {
    std::string name;
    solver::SubDemandEncoding enc;
    int num_nodes = 400;  // fewer for encodings with expensive cold solves
  };
  std::vector<Case> cases;
  cases.push_back({"allgather_4", solver::encode_sub_demand_milp(
                                      allgather_demand(g4.dims[0].groups[0], bytes), 1.0)});
  cases.push_back({"allgather_5", solver::encode_sub_demand_milp(
                                      allgather_demand(g5.dims[0].groups[0], bytes), 1.0),
                   150});
  cases.push_back({"broadcast_8", solver::encode_sub_demand_milp(
                                      broadcast_demand(g8.dims[0].groups[0], bytes), 1.0)});

  std::string json = "{\"bench\":\"milp_warm_resolve\",\"cases\":[";
  std::vector<double> ratios;
  int mismatches = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult r = run_case(cases[i].name, cases[i].enc, cases[i].num_nodes);
    ratios.push_back(r.ratio);
    mismatches += r.mismatches;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"vars\":%d,\"rows\":%d,\"cold_s\":%.6f,"
                  "\"warm_s\":%.6f,\"ratio\":%.2f,\"warm_fallbacks\":%ld,"
                  "\"mismatches\":%d,\"bb_nodes_cold\":%ld,\"bb_nodes_warm\":%ld,"
                  "\"bb_cold_s\":%.6f,\"bb_warm_s\":%.6f}",
                  i ? "," : "", r.name.c_str(), r.vars, r.rows, r.cold_s, r.warm_s, r.ratio,
                  r.warm_fallbacks, r.mismatches, r.bb_nodes_cold, r.bb_nodes_warm, r.bb_cold_s,
                  r.bb_warm_s);
    json += buf;
    std::printf("%s: %d vars, %d rows — cold %.4fs, warm %.4fs, ratio %.2fx "
                "(fallbacks %ld, mismatches %d); B&B %ld nodes %.3fs cold / %ld nodes %.3fs warm\n",
                r.name.c_str(), r.vars, r.rows, r.cold_s, r.warm_s, r.ratio, r.warm_fallbacks,
                r.mismatches, r.bb_nodes_cold, r.bb_cold_s, r.bb_nodes_warm, r.bb_warm_s);
  }
  const double med = median(ratios);
  char tail[128];
  std::snprintf(tail, sizeof(tail), "],\"median_ratio\":%.2f}", med);
  json += tail;
  benchutil::emit_json("milp", json);

  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %d warm/cold status mismatches\n", mismatches);
    return 1;
  }
  // Acceptance gate: warm node re-solve throughput ≥3× cold (median case).
  if (med < 3.0) {
    std::fprintf(stderr, "FAIL: median warm/cold re-solve ratio %.2fx < 3x\n", med);
    return 1;
  }
  return 0;
}
