// Perf-trajectory bench for the simulator core rewrite (flat state, indexed
// link timelines, cached hop paths).
//
// Workload: the pinned differential-fuzz corpus (tests/corpus/seeds.txt,
// path passed as argv[1]) expanded exactly like the fuzz harness — random
// topology, random collective, random direct schedule plus validity-
// preserving mutants per seed — so the gate measures the same schedule
// population the correctness sweep runs.
//
// Every schedule is simulated two ways over identical inputs:
//
//   ref — a verbatim copy of the pre-rewrite engine (unordered_map piece
//         state with per-op copies, std::map busy-interval timelines keyed
//         by hashed link id, per-op path vector build), kept here as the
//         machine-independent baseline;
//   new — the production sim::Simulator (dense arena state, sorted
//         small-vector timelines, per-Simulator path cache).
//
// Both sides must agree bit-for-bit on every makespan (the rewrite is a
// layout change, not a model change). The tentpole metric is simulated
// events per second; the gate fails unless new ≥ 5× ref. Output: one JSON
// line on stdout and in BENCH_sim.json. Registered under the ctest
// configuration/label `perf` as bench_sim_perf.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "fuzz/generators.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/groups.h"
#include "topo/topology.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace syccl;

namespace refsim {

// ---------------------------------------------------------------------------
// Baseline: the simulator engine as it stood before the flat-state rewrite,
// copied verbatim (observability hooks elided — they are off the hot path and
// eliding them only flatters the baseline, which makes the gate stricter).

double touch_tolerance(double a, double b) {
  constexpr double kUlps = 4.0;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::max(1e-18, kUlps * std::numeric_limits<double>::epsilon() * scale);
}

bool touches(double earlier_end, double later_start) {
  return earlier_end >= later_start - touch_tolerance(earlier_end, later_start);
}

class MapTimeline {
 public:
  double allocate(double ready, double dur) {
    if (dur <= 0) return ready;
    double t = ready;
    auto it = intervals_.upper_bound(t);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > t) t = prev->second;
    }
    while (it != intervals_.end() && it->first < t + dur) {
      t = std::max(t, it->second);
      ++it;
    }
    double lo = t;
    double hi = t + dur;
    auto next = intervals_.lower_bound(lo);
    if (next != intervals_.begin()) {
      auto prev = std::prev(next);
      if (touches(prev->second, lo)) {
        lo = prev->first;
        hi = std::max(hi, prev->second);
        next = intervals_.erase(prev);
      }
    }
    while (next != intervals_.end() && touches(hi, next->first)) {
      hi = std::max(hi, next->second);
      next = intervals_.erase(next);
    }
    intervals_.emplace(lo, hi);
    return t;
  }

 private:
  std::map<double, double> intervals_;
};

class RankSet {
 public:
  explicit RankSet(int num_ranks = 0)
      : words_((static_cast<std::size_t>(num_ranks) + 63) / 64) {}
  void set(int r) { words_[static_cast<std::size_t>(r) / 64] |= 1ull << (r % 64); }
  void merge(const RankSet& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  }
  bool contains(const RankSet& o) const {
    for (std::size_t i = 0; i < o.words_.size(); ++i) {
      if ((o.words_[i] & ~words_[i]) != 0) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> words_;
};

struct PieceState {
  std::vector<double> block_arrival;
  RankSet contributors;
  bool present = false;
  bool forwarded = false;
};

using StateKey = std::uint64_t;

StateKey key_of(int piece, int rank) {
  return (static_cast<StateKey>(static_cast<std::uint32_t>(piece)) << 32) |
         static_cast<std::uint32_t>(rank);
}

struct Engine {
  const topo::TopologyGroups& groups;
  const sim::SimOptions& opts;
  const sim::Schedule& schedule;
  int num_ranks;

  std::unordered_map<StateKey, PieceState> state;
  std::unordered_map<StateKey, MapTimeline> port_busy;
  double makespan = 0.0;
  std::size_t num_events = 0;

  Engine(const topo::TopologyGroups& g, const sim::SimOptions& o, const sim::Schedule& s)
      : groups(g), opts(o), schedule(s) {
    num_ranks =
        groups.group_of.empty() ? 0 : static_cast<int>(groups.group_of.front().size());
  }

  int blocks_for(double bytes) const {
    const int nb = static_cast<int>(std::ceil(bytes / std::max(1.0, opts.block_bytes)));
    return std::clamp(nb, 1, std::max(1, opts.max_blocks));
  }

  PieceState& state_at(int piece, int rank) {
    auto [it, inserted] = state.try_emplace(key_of(piece, rank));
    if (inserted) {
      const sim::Piece& p = schedule.pieces[static_cast<std::size_t>(piece)];
      const int nb = blocks_for(p.bytes);
      PieceState& ps = it->second;
      ps.contributors = RankSet(num_ranks);
      if (!p.reduce && p.origin == rank) {
        ps.block_arrival.assign(static_cast<std::size_t>(nb), 0.0);
        ps.present = true;
      } else if (p.reduce &&
                 std::binary_search(p.contributors.begin(), p.contributors.end(), rank)) {
        ps.block_arrival.assign(static_cast<std::size_t>(nb), 0.0);
        ps.present = true;
        ps.contributors.set(rank);
      } else {
        ps.block_arrival.assign(static_cast<std::size_t>(nb),
                                std::numeric_limits<double>::infinity());
      }
    }
    return it->second;
  }

  void run() {
    std::vector<std::size_t> order(schedule.ops.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return schedule.ops[a].phase < schedule.ops[b].phase;
    });
    double phase_floor = 0.0;
    double phase_max = 0.0;
    int current_phase = order.empty() ? 0 : schedule.ops[order.front()].phase;
    for (std::size_t idx : order) {
      const sim::TransferOp& op = schedule.ops[idx];
      if (op.phase != current_phase) {
        phase_floor = phase_max;
        current_phase = op.phase;
      }
      const double finish = run_op(idx, phase_floor);
      phase_max = std::max(phase_max, finish);
      makespan = std::max(makespan, finish);
    }
  }

  double run_op(std::size_t idx, double phase_floor) {
    const sim::TransferOp& op = schedule.ops[idx];
    const sim::Piece& p = schedule.pieces[static_cast<std::size_t>(op.piece)];

    int dim = op.dim;
    if (dim < 0) dim = groups.best_common_dim(op.src, op.dst);
    if (dim < 0 || dim >= groups.num_dims()) {
      throw std::invalid_argument("op endpoints share no dimension group");
    }
    const int g_src =
        groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.src)];
    const int g_dst =
        groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.dst)];
    if (g_src < 0 || g_src != g_dst) {
      throw std::invalid_argument("op crosses groups in dimension " + std::to_string(dim));
    }
    const topo::GroupTopology& gt = groups.group(dim, g_src);
    const int ls = gt.local_of(op.src);
    const int ld = gt.local_of(op.dst);

    std::vector<const topo::PathHop*> path;
    for (const auto& h : gt.up_hops[static_cast<std::size_t>(ls)]) path.push_back(&h);
    for (const auto& h : gt.down_hops[static_cast<std::size_t>(ld)]) path.push_back(&h);

    PieceState& src_state = state_at(op.piece, op.src);
    if (!src_state.present) {
      throw std::invalid_argument("piece not available at op source rank");
    }
    const std::vector<double> src_arrival = src_state.block_arrival;
    const RankSet src_contrib = src_state.contributors;

    const int nb = blocks_for(p.bytes);
    const double block_bytes = p.bytes / nb;

    PieceState& dst_state = state_at(op.piece, op.dst);
    if (p.reduce && dst_state.forwarded && !dst_state.contributors.contains(src_contrib)) {
      throw std::invalid_argument("stale reduce contribution");
    }
    double finish = 0.0;
    for (int b = 0; b < nb; ++b) {
      const double ready = std::max(src_arrival[static_cast<std::size_t>(b)], phase_floor);
      double head = ready;
      double tail = ready;
      for (const topo::PathHop* hop : path) {
        MapTimeline& link =
            port_busy[static_cast<StateKey>(static_cast<std::uint32_t>(hop->link_id))];
        const double occupy = block_bytes * hop->beta;
        const double start = link.allocate(head, occupy);
        head = start + hop->alpha;
        tail = std::max(start + hop->alpha + occupy, tail + hop->alpha);
        num_events++;
      }
      const double arrival = tail;
      double& slot = dst_state.block_arrival[static_cast<std::size_t>(b)];
      if (p.reduce) {
        slot = dst_state.present ? std::max(slot, arrival) : arrival;
      } else {
        slot = std::min(slot, arrival);
      }
      finish = std::max(finish, arrival);
    }
    dst_state.present = true;
    if (p.reduce) {
      dst_state.contributors.merge(src_contrib);
      state.find(key_of(op.piece, op.src))->second.forwarded = true;
    }
    return finish;
  }
};

}  // namespace refsim

namespace {

struct Case {
  std::string desc;
  topo::Topology topo;
  topo::TopologyGroups groups;
  sim::SimOptions sim_opts;
  std::vector<sim::Schedule> schedules;
  std::unique_ptr<sim::Simulator> simulator;  ///< built once, outside timing
};

std::vector<std::uint64_t> load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_sim: cannot open corpus file %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string token;
    if (ls >> token) seeds.push_back(std::stoull(token, nullptr, 0));
  }
  return seeds;
}

/// Expands one corpus seed exactly like fuzz::run_differential_case: same
/// rng draw order, same topology/collective/options, direct schedule plus
/// two mutants.
Case build_case(std::uint64_t seed) {
  util::Rng rng(seed);
  Case c;
  fuzz::RandomTopology rt = fuzz::random_topology(rng);
  c.desc = rt.desc;
  c.topo = std::move(rt.topo);
  c.groups = topo::extract_groups(c.topo);
  const int num_ranks = static_cast<int>(c.topo.num_gpus());
  const coll::Collective coll = fuzz::random_collective(rng, num_ranks);
  c.sim_opts.block_bytes = static_cast<double>(std::uint64_t{1} << rng.next_in(14, 20));
  c.sim_opts.max_blocks = static_cast<int>(rng.next_in(1, 8));
  const sim::Schedule direct = fuzz::random_direct_schedule(coll, c.groups, rng);
  c.schedules.push_back(direct);
  for (int m = 0; m < 2; ++m) {
    sim::Schedule mutant = direct;
    fuzz::mutate_schedule(mutant, c.groups, rng, 1 + static_cast<int>(rng.next_below(3)));
    c.schedules.push_back(std::move(mutant));
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string corpus_path = argc > 1 ? argv[1] : "tests/corpus/seeds.txt";
  const std::vector<std::uint64_t> seeds = load_corpus(corpus_path);
  if (seeds.empty()) {
    std::fprintf(stderr, "bench_sim: empty corpus %s\n", corpus_path.c_str());
    return 2;
  }

  // Heap-pinned cases: the Simulator keeps a reference to its case's groups,
  // so it must be constructed only once the Case has its final address.
  std::vector<std::unique_ptr<Case>> case_ptrs;
  case_ptrs.reserve(seeds.size());
  for (const std::uint64_t s : seeds) {
    case_ptrs.push_back(std::make_unique<Case>(build_case(s)));
    Case& c = *case_ptrs.back();
    c.simulator = std::make_unique<sim::Simulator>(c.groups, c.sim_opts);
  }

  std::size_t num_schedules = 0;
  for (const auto& c : case_ptrs) num_schedules += c->schedules.size();

  // Correctness tripwire + per-sweep event count: the rewrite must be a pure
  // layout change, so every makespan matches the baseline bit-for-bit and
  // both engines must agree on which schedules to reject. Some pinned corpus
  // seeds intentionally mutate into rejected schedules; agree-to-throw is a
  // pass, and only cleanly-simulating schedules enter the timed sweeps.
  std::size_t events_per_sweep = 0;
  std::size_t mismatches = 0;
  std::size_t rejected = 0;
  for (auto& cp : case_ptrs) {
    Case& c = *cp;
    std::vector<sim::Schedule> kept;
    for (sim::Schedule& s : c.schedules) {
      bool new_ok = true;
      sim::SimResult r;
      try {
        r = c.simulator->run(s);
      } catch (const std::invalid_argument&) {
        new_ok = false;
      }
      bool ref_ok = true;
      refsim::Engine ref(c.groups, c.sim_opts, s);
      try {
        ref.run();
      } catch (const std::invalid_argument&) {
        ref_ok = false;
      }
      if (new_ok != ref_ok) {
        ++mismatches;
        std::fprintf(stderr, "bench_sim: VERDICT MISMATCH on %s (new %s, ref %s)\n",
                     c.desc.c_str(), new_ok ? "ok" : "throw", ref_ok ? "ok" : "throw");
        continue;
      }
      if (!new_ok) {
        ++rejected;
        continue;
      }
      if (r.makespan != ref.makespan || r.num_events != ref.num_events) {
        ++mismatches;
        std::fprintf(stderr, "bench_sim: MISMATCH on %s: new %.17g/%zu vs ref %.17g/%zu\n",
                     c.desc.c_str(), r.makespan, r.num_events, ref.makespan,
                     ref.num_events);
        continue;
      }
      events_per_sweep += r.num_events;
      kept.push_back(std::move(s));
    }
    c.schedules = std::move(kept);
  }
  num_schedules = 0;
  for (const auto& c : case_ptrs) num_schedules += c->schedules.size();

  // Warm both sides, then size the repetition count so the (fast) production
  // sweep runs long enough to time reliably.
  util::Stopwatch probe;
  for (const auto& c : case_ptrs) {
    for (const sim::Schedule& s : c->schedules) c->simulator->run(s);
  }
  const double probe_s = probe.elapsed_seconds();
  const int reps = std::max(3, static_cast<int>(std::ceil(0.5 / std::max(probe_s, 1e-4))));

  // Interleave the production and baseline sweeps rep by rep instead of
  // timing two long back-to-back phases: machine-load drift then hits both
  // sides of the ratio equally instead of skewing whichever phase it lands
  // on (the ratio, not the absolute rate, is what the gate checks).
  double new_s = 0.0;
  double ref_s = 0.0;
  for (int r = 0; r < reps; ++r) {
    {
      const util::Stopwatch sw;
      for (const auto& c : case_ptrs) {
        for (const sim::Schedule& s : c->schedules) c->simulator->run(s);
      }
      new_s += sw.elapsed_seconds();
    }
    {
      const util::Stopwatch sw;
      for (const auto& c : case_ptrs) {
        for (const sim::Schedule& s : c->schedules) {
          refsim::Engine ref(c->groups, c->sim_opts, s);
          ref.run();
        }
      }
      ref_s += sw.elapsed_seconds();
    }
  }

  // Informational: batched throughput with a pool — the path the synthesizer
  // uses for candidate fan-out.
  util::ThreadPool pool(0);
  std::vector<std::vector<const sim::Schedule*>> ptrs(case_ptrs.size());
  for (std::size_t i = 0; i < case_ptrs.size(); ++i) {
    for (const sim::Schedule& s : case_ptrs[i]->schedules) ptrs[i].push_back(&s);
  }
  util::Stopwatch batch_clock;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < case_ptrs.size(); ++i) {
      case_ptrs[i]->simulator->run_batch(ptrs[i], &pool);
    }
  }
  const double batch_s = batch_clock.elapsed_seconds();

  const double total_events = static_cast<double>(events_per_sweep) * reps;
  const double new_eps = total_events / new_s;
  const double ref_eps = total_events / ref_s;
  const double batch_eps = total_events / batch_s;
  const double ratio = new_eps / ref_eps;
  constexpr double kGate = 5.0;
  const bool pass = mismatches == 0 && ratio >= kGate;

  std::printf("bench_sim: %zu seeds, %zu schedules (%zu rejected by both), "
              "%zu events/sweep, %d reps\n",
              seeds.size(), num_schedules, rejected, events_per_sweep, reps);
  std::printf("  ref  %10.0f events/sec (%.3f s)\n", ref_eps, ref_s);
  std::printf("  new  %10.0f events/sec (%.3f s)  ratio %.2fx (gate >= %.1fx)\n", new_eps,
              new_s, ratio, kGate);
  std::printf("  batch %9.0f events/sec (%.3f s, pool=%zu)\n", batch_eps, batch_s,
              pool.size());

  std::ostringstream json;
  json << "{\"bench\":\"sim\",\"seeds\":" << seeds.size()
       << ",\"schedules\":" << num_schedules << ",\"events_per_sweep\":" << events_per_sweep
       << ",\"reps\":" << reps << ",\"ref_events_per_sec\":" << static_cast<long>(ref_eps)
       << ",\"new_events_per_sec\":" << static_cast<long>(new_eps)
       << ",\"batch_events_per_sec\":" << static_cast<long>(batch_eps)
       << ",\"ratio\":" << ratio << ",\"gate\":" << kGate
       << ",\"mismatches\":" << mismatches << ",\"pass\":" << (pass ? "true" : "false")
       << "}";
  benchutil::emit_json("sim", json.str());

  if (!pass) {
    std::fprintf(stderr, "bench_sim: FAIL (%s)\n",
                 mismatches != 0 ? "baseline mismatch" : "speedup below gate");
    return 1;
  }
  return 0;
}
