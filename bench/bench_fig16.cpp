// Figure 16 reproduction: synthesis time.
//   (a) SyCCL vs TECCL synthesis time, AllGather on 16/32 A100, sizes 1KB–4GB
//   (b) SyCCL synthesis-time breakdown (search/combine/solve1/solve2), 32 GPU
//   (c) synthesis time vs number of parallel solver instances
#include <cstdio>

#include "baselines/teccl.h"
#include "bench_util.h"
#include "core/synthesizer.h"
#include "topo/builders.h"
#include "util/stopwatch.h"

#include <thread>

using namespace syccl;

namespace {

void panel_a() {
  benchutil::header("Fig 16(a): synthesis time, SyCCL vs TECCL (AllGather)");
  std::printf("%-8s %14s %14s %14s %14s\n", "size", "TECCL-16 (s)", "SyCCL-16 (s)",
              "TECCL-32 (s)", "SyCCL-32 (s)");
  const double budget = benchutil::teccl_budget(8.0);
  for (const auto size : benchutil::size_sweep()) {
    double row[4];
    int col = 0;
    for (int n : {16, 32}) {
      const topo::Topology topo = topo::build_a100_testbed(n);
      const topo::TopologyGroups groups = topo::extract_groups(topo);
      const coll::Collective ag = coll::make_allgather(n, size);
      baselines::TecclOptions topts;
      topts.time_budget_s = budget;
      const auto teccl = baselines::teccl_synthesize(ag, groups, topts);
      row[col++] = teccl.synth_seconds;
      core::Synthesizer synth(topo);
      util::Stopwatch sw;
      (void)synth.synthesize(ag);
      row[col++] = sw.elapsed_seconds();
    }
    std::printf("%-8s %14.2f %14.3f %14.2f %14.3f\n", benchutil::human_size(size).c_str(),
                row[0], row[1], row[2], row[3]);
  }
  std::printf("(TECCL runs under a %.0f s per-point solver budget standing in for the "
              "paper's 10 h timeout)\n", budget);
}

void panel_b() {
  benchutil::header("Fig 16(b): SyCCL synthesis-time breakdown, 32 A100");
  const topo::Topology topo = topo::build_a100_testbed(32);
  std::printf("%-12s %-8s %10s %10s %10s %10s %10s\n", "collective", "size", "search",
              "combine", "solve1", "solve2", "total(s)");
  for (const auto kind : {coll::CollKind::AllGather, coll::CollKind::AllToAll}) {
    core::Synthesizer synth(topo);
    for (const auto size : benchutil::size_sweep()) {
      const coll::Collective c = kind == coll::CollKind::AllGather
                                     ? coll::make_allgather(32, size)
                                     : coll::make_alltoall(32, size);
      const auto r = synth.synthesize(c);
      std::printf("%-12s %-8s %10.3f %10.3f %10.3f %10.3f %10.3f\n", coll::kind_name(kind),
                  benchutil::human_size(size).c_str(), r.breakdown.search_s,
                  r.breakdown.combine_s, r.breakdown.solve1_s, r.breakdown.solve2_s,
                  r.breakdown.total_s);
    }
  }
}

void panel_c() {
  benchutil::header("Fig 16(c): synthesis time vs parallel solver instances (32 A100, AG)");
  std::printf("(host exposes %u hardware thread(s); speedups saturate there — the paper's "
              "192-core host scales to 192 instances)\n",
              std::thread::hardware_concurrency());
  const topo::Topology topo = topo::build_a100_testbed(32);
  std::printf("%-10s", "threads");
  for (const auto size : {std::uint64_t{1} << 20, std::uint64_t{16} << 20, std::uint64_t{1} << 30}) {
    std::printf(" %11s", (benchutil::human_size(size) + " (s)").c_str());
  }
  std::printf("\n");
  for (const int threads : {1, 2, 4, 8, 16}) {
    core::SynthesisConfig cfg;
    cfg.num_threads = threads;
    core::Synthesizer synth(topo, cfg);
    std::printf("%-10d", threads);
    for (const auto size :
         {std::uint64_t{1} << 20, std::uint64_t{16} << 20, std::uint64_t{1} << 30}) {
      util::Stopwatch sw;
      (void)synth.synthesize(coll::make_allgather(32, size));
      std::printf(" %11.3f", sw.elapsed_seconds());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  panel_a();
  panel_b();
  panel_c();
  return 0;
}
