// Perf-trajectory bench: end-to-end Synthesizer::synthesize (AllGather on
// 2×H800), cold vs warm solve cache, emitted as one JSON line so the
// synthesis cost can be tracked across PRs.
//
// Output: a `BENCH_synth.json` file in the working directory plus the same
// line on stdout. Registered under the ctest label/configuration `perf`,
// excluded from the default `ctest` run.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/synthesizer.h"
#include "solver/solve_cache.h"
#include "topo/builders.h"
#include "util/stopwatch.h"

using namespace syccl;

namespace {

core::SynthesisConfig bench_config() {
  core::SynthesisConfig cfg;
  cfg.sketch.search.max_sketches = 32;
  cfg.sketch.max_prototypes = 4;
  cfg.sketch.combine.max_outputs = 10;
  cfg.coarse_solver.time_limit_s = 0.1;
  cfg.fine_solver.time_limit_s = 0.2;
  // SYCCL_SYNTH_THREADS=1 isolates the parallel-evaluation share (compare
  // cold_s against the default run).
  if (const char* t = std::getenv("SYCCL_SYNTH_THREADS")) cfg.num_threads = std::atoi(t);
  return cfg;
}

double median_of_three(double a, double b, double c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  return a > b ? a : b;
}

}  // namespace

int main() {
  const auto topo = topo::build_h800_cluster(2);
  const auto coll = coll::make_allgather(16, 16 << 20);

  auto run_once = [&](bool clear_cache) {
    if (clear_cache) solver::SubScheduleCache::instance().clear();
    core::Synthesizer synth(topo, bench_config());
    util::Stopwatch clock;
    const auto result = synth.synthesize(coll);
    return std::make_pair(clock.elapsed_seconds(), result);
  };

  // Cold: cache cleared before each run (first-ever synthesis cost).
  double cold[3];
  core::SynthesisBreakdown cold_bd;
  for (int i = 0; i < 3; ++i) {
    auto [secs, result] = run_once(true);
    cold[i] = secs;
    cold_bd = result.breakdown;
  }
  // Warm: cache kept across runs (size-sweep steady state).
  double warm[3];
  core::SynthesisBreakdown warm_bd;
  double predicted = 0.0;
  for (int i = 0; i < 3; ++i) {
    auto [secs, result] = run_once(false);
    warm[i] = secs;
    warm_bd = result.breakdown;
    predicted = result.predicted_time;
  }

  const double cold_s = median_of_three(cold[0], cold[1], cold[2]);
  const double warm_s = median_of_three(warm[0], warm[1], warm[2]);
  const auto cache = solver::SubScheduleCache::instance().stats();

  char line[1024];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"synth_allgather_2xh800\",\"bytes\":%llu,\"cold_s\":%.6f,"
      "\"warm_s\":%.6f,\"speedup\":%.2f,\"predicted_time_s\":%.6e,"
      "\"cold_solver_calls\":%d,\"warm_solver_calls\":%d,\"warm_cache_hits\":%d,"
      "\"cache_entries\":%zu,\"cache_bytes\":%zu}",
      static_cast<unsigned long long>(coll.total_bytes()), cold_s, warm_s,
      warm_s > 0 ? cold_s / warm_s : 0.0, predicted, cold_bd.num_solver_calls,
      warm_bd.num_solver_calls, warm_bd.cache_hits, cache.entries, cache.bytes);
  benchutil::emit_json("synth", line);

  // Gate for the acceptance criterion: a warm re-synthesis must reuse the
  // solve cache. The deterministic signal is the breakdown — every cold
  // solver call must come back as a warm cache hit with zero re-solves —
  // backed by a loose wall-clock sanity bound. (An absolute speedup
  // threshold flakes on a busy single-core box; the `speedup` field in the
  // JSON line still tracks it across PRs.)
  if (warm_bd.num_solver_calls != 0 || warm_bd.cache_hits < cold_bd.num_solver_calls) {
    std::fprintf(stderr, "FAIL: warm synthesis re-solved %d sub-demands (%d cache hits, cold %d)\n",
                 warm_bd.num_solver_calls, warm_bd.cache_hits, cold_bd.num_solver_calls);
    return 1;
  }
  if (warm_s > cold_s) {
    std::fprintf(stderr, "FAIL: warm synthesis %.4fs slower than cold %.4fs\n", warm_s, cold_s);
    return 1;
  }
  return 0;
}
